/**
 * @file
 * The parallel simulation engine: fans independent (benchmark x
 * cache-size x model) simulations out across the shared thread pool
 * while guaranteeing results bit-identical to a serial run.
 *
 * Determinism contract: every helper here writes each simulation's
 * result into a slot pre-sized from the input axes, and every
 * reduction over those slots happens serially in input order after the
 * fan-out completes. Thread count (DYNEX_THREADS, --threads, or the
 * hardware default) therefore affects wall-clock time only, never a
 * single output bit.
 */

#ifndef DYNEX_SIM_PARALLEL_H
#define DYNEX_SIM_PARALLEL_H

#include <functional>
#include <string>
#include <vector>

#include "cache/dynamic_exclusion.h"
#include "sim/batch.h"
#include "sim/runner.h"
#include "trace/trace.h"
#include "util/status.h"

namespace dynex
{

/**
 * One failed leg of a fault-tolerant sweep. sizeBytes == 0 means the
 * whole benchmark failed (trace load / index build / setup), so every
 * size of that benchmark is invalid.
 */
struct FailedLeg
{
    std::string bench;
    std::uint64_t sizeBytes = 0;
    /** Which model(s) the failure covers; "triad" = all three. */
    std::string model = "triad";
    Status status;

    std::string toString() const;
};

/**
 * A fault-tolerant suite sweep's result: the triad grid plus a
 * validity mask and the recorded failures. grid[b][s] is meaningful
 * iff ok[b][s]; failures are ordered benchmark-major then by size, so
 * the outcome is deterministic at any worker count.
 */
struct SuiteSweepOutcome
{
    std::vector<std::vector<TriadResult>> grid;
    std::vector<std::vector<std::uint8_t>> ok;
    std::vector<FailedLeg> failures;

    bool allOk() const { return failures.empty(); }
};

/** Which reference stream of a suite benchmark to replay. */
enum class StreamKind
{
    Instructions,
    Data,
    Mixed,
};

/** Load the requested stream of @p name via Workloads. */
std::shared_ptr<const Trace> loadStream(const std::string &name,
                                        Count refs, StreamKind stream);

/**
 * Run body(i) for i in [0, n) on the global pool and block until all
 * complete. Thin wrapper over ThreadPool::global().parallelFor so sim
 * code does not depend on the pool type directly; may be nested.
 */
void simParallelFor(std::size_t n,
                    const std::function<void(std::size_t)> &body);

/**
 * The full triad grid of a suite sweep: result[b][s] is the triad of
 * benchmark_names[b] at sizes[s]. One trace and one RunStart next-use
 * index are built per benchmark (at @p line_bytes) and shared across
 * that benchmark's sizes. Benchmarks fan out across the pool; within
 * a benchmark the Batched engine replays all sizes x models in one
 * trace pass, while PerLeg fans the sizes out beneath it. At most one
 * trace + index per in-flight benchmark is resident, so peak memory
 * scales with the worker count rather than the suite size. Both
 * engines produce bit-identical grids at any worker count.
 */
std::vector<std::vector<TriadResult>> sweepSuiteTriads(
    const std::vector<std::string> &benchmark_names, Count refs,
    const std::vector<std::uint64_t> &sizes, std::uint32_t line_bytes,
    const DynamicExclusionConfig &config, StreamKind stream,
    ReplayEngine engine = ReplayEngine::Batched);

/**
 * The fault-tolerant form of sweepSuiteTriads: every failure — a
 * throwing trace load, a failing leg, an injected fault — is captured
 * as a FailedLeg instead of propagating, and every unaffected leg
 * completes with results bit-identical to an unfaulted run at any
 * worker count. Benchmarks are independent simulations, so one
 * benchmark's failure cannot perturb another's replay; within a
 * benchmark, legs are independent models, so a failed leg cannot
 * perturb its siblings.
 */
SuiteSweepOutcome sweepSuiteTriadsChecked(
    const std::vector<std::string> &benchmark_names, Count refs,
    const std::vector<std::uint64_t> &sizes, std::uint32_t line_bytes,
    const DynamicExclusionConfig &config, StreamKind stream,
    ReplayEngine engine = ReplayEngine::Batched);

/**
 * The line-size counterpart: result[b][l] is the triad of
 * benchmark_names[b] at lines[l] with fixed @p size_bytes. A fresh
 * RunStart index is built per (benchmark, line size), since next-use
 * equivalence depends on block granularity; the Batched engine walks
 * a benchmark's line sizes serially so the index builds can share one
 * scratch table, and replays each line point's three models in one
 * trace pass.
 */
std::vector<std::vector<TriadResult>> sweepSuiteLineTriads(
    const std::vector<std::string> &benchmark_names, Count refs,
    std::uint64_t size_bytes, const std::vector<std::uint32_t> &lines,
    const DynamicExclusionConfig &config,
    ReplayEngine engine = ReplayEngine::Batched);

} // namespace dynex

#endif // DYNEX_SIM_PARALLEL_H
