/**
 * @file
 * The parallel simulation engine: fans independent (benchmark x
 * cache-size x model) simulations out across the shared thread pool
 * while guaranteeing results bit-identical to a serial run.
 *
 * Determinism contract: every helper here writes each simulation's
 * result into a slot pre-sized from the input axes, and every
 * reduction over those slots happens serially in input order after the
 * fan-out completes. Thread count (DYNEX_THREADS, --threads, or the
 * hardware default) therefore affects wall-clock time only, never a
 * single output bit.
 */

#ifndef DYNEX_SIM_PARALLEL_H
#define DYNEX_SIM_PARALLEL_H

#include <functional>
#include <string>
#include <vector>

#include "cache/dynamic_exclusion.h"
#include "sim/runner.h"
#include "trace/trace.h"

namespace dynex
{

/** Which reference stream of a suite benchmark to replay. */
enum class StreamKind
{
    Instructions,
    Data,
    Mixed,
};

/** Load the requested stream of @p name via Workloads. */
std::shared_ptr<const Trace> loadStream(const std::string &name,
                                        Count refs, StreamKind stream);

/**
 * Run body(i) for i in [0, n) on the global pool and block until all
 * complete. Thin wrapper over ThreadPool::global().parallelFor so sim
 * code does not depend on the pool type directly; may be nested.
 */
void simParallelFor(std::size_t n,
                    const std::function<void(std::size_t)> &body);

/**
 * The full triad grid of a suite sweep: result[b][s] is the triad of
 * benchmark_names[b] at sizes[s]. One trace and one RunStart next-use
 * index are built per benchmark (at @p line_bytes) and shared across
 * that benchmark's sizes. Benchmarks fan out across the pool, and each
 * benchmark's sizes fan out beneath it; at most one trace + index per
 * in-flight benchmark is resident, so peak memory scales with the
 * worker count rather than the suite size.
 */
std::vector<std::vector<TriadResult>> sweepSuiteTriads(
    const std::vector<std::string> &benchmark_names, Count refs,
    const std::vector<std::uint64_t> &sizes, std::uint32_t line_bytes,
    const DynamicExclusionConfig &config, StreamKind stream);

/**
 * The line-size counterpart: result[b][l] is the triad of
 * benchmark_names[b] at lines[l] with fixed @p size_bytes. A fresh
 * RunStart index is built per (benchmark, line size), since next-use
 * equivalence depends on block granularity.
 */
std::vector<std::vector<TriadResult>> sweepSuiteLineTriads(
    const std::vector<std::string> &benchmark_names, Count refs,
    std::uint64_t size_bytes, const std::vector<std::uint32_t> &lines,
    const DynamicExclusionConfig &config);

} // namespace dynex

#endif // DYNEX_SIM_PARALLEL_H
