#include "sim/kernel.h"

#include <atomic>
#include <cstdlib>
#include <memory>

#if defined(__x86_64__) && defined(__GNUC__)
#define DYNEX_KERNEL_HAVE_AVX2 1
#include <immintrin.h>
#else
#define DYNEX_KERNEL_HAVE_AVX2 0
#endif

#include "cache/hit_last.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace_events.h"
#include "util/logging.h"

// The chunk loops run hot enough that inlining them into the (large)
// pass driver costs real speed: the merged frame spills their loop
// registers. Pinning them out of line gives each loop a clean
// register file for the price of one call per 4096 references.
#if defined(__GNUC__)
#define DYNEX_KERNEL_NOINLINE __attribute__((noinline))
#else
#define DYNEX_KERNEL_NOINLINE
#endif

namespace dynex
{

namespace
{

std::atomic<bool> gForceScalar{false};

bool
envForceScalar()
{
    static const bool forced = [] {
        const char *env = std::getenv("DYNEX_KERNEL_FORCE_SCALAR");
        return env && *env && !(env[0] == '0' && env[1] == '\0');
    }();
    return forced;
}

bool
cpuHasAvx2()
{
#if DYNEX_KERNEL_HAVE_AVX2
    static const bool has = __builtin_cpu_supports("avx2") != 0;
    return has;
#else
    return false;
#endif
}

/**
 * The run-boundary lane: same[i] = 1 iff blocks[i] equals the previous
 * block of the trace (with @p prev carried in from the previous chunk,
 * kAddrInvalid at trace start). Both last-line models consume it: a
 * set bit is exactly a within-run reference served by the last-line
 * register.
 */
void
computeSameScalar(const Addr *blocks, std::size_t n, Addr prev,
                  std::uint8_t *same)
{
    for (std::size_t i = 0; i < n; ++i) {
        same[i] = blocks[i] == prev;
        prev = blocks[i];
    }
}

#if DYNEX_KERNEL_HAVE_AVX2
__attribute__((target("avx2"))) void
computeSameAvx2(const Addr *blocks, std::size_t n, Addr prev,
                std::uint8_t *same)
{
    if (n == 0)
        return;
    same[0] = blocks[0] == prev;
    std::size_t i = 1;
    for (; i + 4 <= n; i += 4) {
        const __m256i cur = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(blocks + i));
        const __m256i pre = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(blocks + i - 1));
        const __m256i eq = _mm256_cmpeq_epi64(cur, pre);
        const int mask =
            _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        same[i] = mask & 1;
        same[i + 1] = (mask >> 1) & 1;
        same[i + 2] = (mask >> 2) & 1;
        same[i + 3] = (mask >> 3) & 1;
    }
    for (; i < n; ++i)
        same[i] = blocks[i] == blocks[i - 1];
}
#endif

void
computeSame(KernelIsa isa, const Addr *blocks, std::size_t n,
            Addr prev, std::uint8_t *same)
{
#if DYNEX_KERNEL_HAVE_AVX2
    if (isa == KernelIsa::Avx2) {
        computeSameAvx2(blocks, n, prev, same);
        return;
    }
#endif
    (void)isa;
    computeSameScalar(blocks, n, prev, same);
}

/**
 * Per-leg hit-last bits. Traces with a compact block range get a flat
 * bitmap (one load + shift per probe, no pointer chase); anything
 * sparse enough to blow the cap falls back to the exact
 * IdealHitLastStore, whose values are identical by construction.
 */
class HitLastLane
{
  public:
    /** Blocks at or above this never use the flat bitmap (8MB). */
    static constexpr Addr kFlatCapBlocks = Addr{1} << 26;

    void
    init(Addr max_block, bool initial_value)
    {
        if (max_block != kAddrInvalid && max_block < kFlatCapBlocks) {
            words.assign((max_block >> 6) + 1,
                         initial_value ? ~std::uint64_t{0} : 0);
        } else {
            store = std::make_unique<IdealHitLastStore>(initial_value);
        }
    }

    bool isFlat() const { return !words.empty(); }
    std::uint64_t *flatWords() { return words.data(); }
    IdealHitLastStore *fallback() { return store.get(); }

  private:
    std::vector<std::uint64_t> words;
    std::unique_ptr<IdealHitLastStore> store;
};

/** Flat-bitmap hit-last access policy for the DE chunk loop. */
struct FlatHitLast
{
    std::uint64_t *__restrict words;

    bool
    get(Addr block) const
    {
        return (words[block >> 6] >> (block & 63)) & 1;
    }

    /** h[block] := @p keep ? unchanged : @p value, with no branch:
     * `keep` follows the bypass decision, which flips irregularly, so
     * a branch here would mispredict its way through bypass-heavy
     * legs. */
    void
    update(Addr block, bool keep, bool value)
    {
        std::uint64_t &word = words[block >> 6];
        const unsigned pos = static_cast<unsigned>(block & 63);
        const std::uint64_t bit = std::uint64_t{1} << pos;
        const std::uint64_t keep_mask =
            0 - static_cast<std::uint64_t>(keep);
        const std::uint64_t new_bit =
            (keep_mask & word) |
            (~keep_mask & (static_cast<std::uint64_t>(value) << pos));
        word = (word & ~bit) | (new_bit & bit);
    }
};

/** IdealHitLastStore-backed policy (sparse traces). */
struct StoreHitLast
{
    IdealHitLastStore *store;

    bool get(Addr block) const { return store->lookup(block); }

    void
    update(Addr block, bool keep, bool value)
    {
        if (!keep)
            store->update(block, value);
    }
};

/** One optimal-model set: tag and resident next-use share a 16-byte
 * lane, so the model's random probe touches one cache line instead of
 * two parallel arrays. */
struct OptLane
{
    Addr tag;
    Tick next;
};

/** All SoA lanes and event tallies of one (cache size) leg. */
struct KernelLeg
{
    std::uint64_t sizeBytes = 0;
    Addr setMask = 0;

    // Conventional direct-mapped: sentinel tags double as validity.
    std::vector<Addr> dmTags;
    std::uint64_t dmHits = 0, dmCold = 0;

    // Dynamic exclusion: tag + sticky lanes, hit-last bitmap, and one
    // tally per Figure-1 arc (ColdFill, Hit, ReplaceUnsticky,
    // ReplaceHitLast, Bypass — the FsmEvent order).
    std::vector<Addr> deTags;
    std::vector<std::uint8_t> deSticky;
    HitLastLane deHitLast;
    std::uint64_t deCnt[5] = {};
    std::uint64_t deLlHits = 0;

    // Optimal with bypass: interleaved tag + resident-next-use lanes.
    std::vector<OptLane> optLanes;
    std::uint64_t optHits = 0, optCold = 0, optEvict = 0,
                  optBypass = 0, optLlHits = 0;

    KernelLeg(std::uint64_t size_bytes, std::uint32_t line_bytes,
              Addr max_block, const DynamicExclusionConfig &config)
        : sizeBytes(size_bytes)
    {
        // Same construction-time validation as the model-based legs,
        // so a bad geometry fails a checked leg identically.
        const CacheGeometry geometry =
            CacheGeometry::directMapped(size_bytes, line_bytes);
        geometry.validate();
        const std::uint64_t sets = geometry.numSets();
        setMask = sets - 1;
        dmTags.assign(sets, kAddrInvalid);
        deTags.assign(sets, kAddrInvalid);
        deSticky.assign(sets, 0);
        deHitLast.init(max_block, config.initialHitLast);
        optLanes.assign(sets, OptLane{kAddrInvalid, 0});
    }
};

/** One chunk of the conventional direct-mapped model: always fill, so
 * the tag store is unconditional and the loop carries no branches. */
DYNEX_KERNEL_NOINLINE void
dmChunk(KernelLeg &leg, const Addr *__restrict blocks, std::size_t n)
{
    // __restrict throughout the chunk loops: the lane stores can never
    // alias the packed input arrays, and telling the compiler so stops
    // it reloading blocks[i]/next_use[i]/same[i] after every store —
    // these loops retire at full issue width, so every spared
    // instruction is wall-clock.
    Addr *const __restrict tags = leg.dmTags.data();
    const Addr mask = leg.setMask;
    std::uint64_t hits = 0, cold = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Addr blk = blocks[i];
        const std::size_t set = static_cast<std::size_t>(blk & mask);
        const Addr t = tags[set];
        hits += t == blk;
        cold += t == kAddrInvalid;
        tags[set] = blk;
    }
    leg.dmHits += hits;
    leg.dmCold += cold;
}

/**
 * One chunk of the dynamic-exclusion model. The Figure-1 arc is
 * computed as a branchless select chain (index 0-4 in FsmEvent
 * order) and every lane update is a conditional move off it; only the
 * within-run skip and the hit-last write remain branches.
 */
template <bool LastLine, typename HitLast>
DYNEX_KERNEL_NOINLINE void
deChunk(KernelLeg &leg, HitLast hit_last,
        const Addr *__restrict blocks,
        const std::uint8_t *__restrict same, std::size_t n,
        std::uint8_t sticky_max)
{
    Addr *const __restrict tags = leg.deTags.data();
    std::uint8_t *const __restrict sticky = leg.deSticky.data();
    const Addr mask = leg.setMask;
    std::uint64_t cold = 0, hit = 0, unsticky = 0, override_ = 0,
                  bypassed = 0, ll = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Addr blk = blocks[i];
        if constexpr (LastLine) {
            if (same[i]) {
                // Within-run reference: the last-line buffer serves it
                // and the FSM deliberately does not observe it.
                ++ll;
                continue;
            }
        }
        const std::size_t set = static_cast<std::size_t>(blk & mask);
        const Addr t = tags[set];
        const std::uint8_t s = sticky[set];
        const bool h = hit_last.get(blk);
        const unsigned arc = t == kAddrInvalid ? 0u
                             : t == blk        ? 1u
                             : s == 0          ? 2u
                             : h               ? 3u
                                               : 4u;
        const bool bypass = arc == 4;
        cold += arc == 0;
        hit += arc == 1;
        unsticky += arc == 2;
        override_ += arc == 3;
        bypassed += bypass;
        // Bypass keeps the line and decays sticky; everything else
        // installs the block at full stickiness. Mask arithmetic, not
        // selects: the bypass decision is data-dependent and a branch
        // here mispredicts constantly (see optChunk).
        const Addr bmask = 0 - static_cast<Addr>(bypass);
        tags[set] = (t & bmask) | (blk & ~bmask);
        sticky[set] = bypass ? static_cast<std::uint8_t>(s - 1)
                             : sticky_max;
        // h[x] := 1 on fill/hit, consumed (:= 0) on a hit-last
        // override, untouched on bypass — exactly exclusionStep.
        hit_last.update(blk, bypass, arc != 3);
    }
    leg.deCnt[0] += cold;
    leg.deCnt[1] += hit;
    leg.deCnt[2] += unsticky;
    leg.deCnt[3] += override_;
    leg.deCnt[4] += bypassed;
    leg.deLlHits += ll;
}

template <typename HitLast>
void
deChunkDispatch(KernelLeg &leg, HitLast hit_last, const Addr *blocks,
                const std::uint8_t *same, std::size_t n,
                bool last_line, std::uint8_t sticky_max)
{
    if (last_line)
        deChunk<true>(leg, hit_last, blocks, same, n, sticky_max);
    else
        deChunk<false>(leg, hit_last, blocks, same, n, sticky_max);
}

/**
 * One chunk of the optimal model (always last-line, RunStart oracle):
 * retain whichever of {resident, incoming} is referenced sooner; all
 * lane updates are conditional moves off the retain decision.
 */
DYNEX_KERNEL_NOINLINE void
optChunk(KernelLeg &leg, const Addr *__restrict blocks,
         const Tick *__restrict next_use,
         const std::uint8_t *__restrict same, std::size_t n)
{
    OptLane *const __restrict lanes = leg.optLanes.data();
    const Addr mask = leg.setMask;
    std::uint64_t hits = 0, cold = 0, writes = 0, ll = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (same[i]) {
            ++ll;
            continue;
        }
        const Addr blk = blocks[i];
        const std::size_t set = static_cast<std::size_t>(blk & mask);
        OptLane &lane = lanes[set];
        const Tick next = next_use[i];
        const bool hit = lane.tag == blk;
        const bool cold_miss = lane.tag == kAddrInvalid;
        const bool wins = next < lane.next;
        // Hits refresh the resident next-use; cold misses and won
        // conflicts install the incoming block; lost conflicts
        // bypass. The select is spelled as mask arithmetic because
        // `write` is data-dependent (bypass-heavy legs flip it
        // irregularly); a compiler-chosen branch here mispredicts
        // constantly.
        const bool write = hit | cold_miss | wins;
        const Addr wmask = 0 - static_cast<Addr>(write);
        lane.tag = (blk & wmask) | (lane.tag & ~wmask);
        lane.next = (next & wmask) | (lane.next & ~wmask);
        hits += hit;
        cold += cold_miss;
        writes += write;
    }
    // Each visible reference is exactly one of hit / cold / evict /
    // bypass; a write that is neither hit nor cold evicted, and a
    // non-write bypassed, so both fall out of three cheap tallies.
    leg.optHits += hits;
    leg.optCold += cold;
    leg.optEvict += writes - hits - cold;
    leg.optBypass += (n - ll) - writes;
    leg.optLlHits += ll;
}

/**
 * The metrics-off fast path: one pass over the chunk updates all
 * three models per reference, sharing the block/set computation and
 * letting the three independent lane probes overlap in the memory
 * pipeline. Tallies are exact integers, so this is bit-identical to
 * the split per-model loops (kept for per-model replay timing when a
 * metrics collector is installed).
 */
template <bool LastLine, typename HitLast>
DYNEX_KERNEL_NOINLINE void
fusedChunk(KernelLeg &leg, HitLast hit_last,
           const Addr *__restrict blocks,
           const Tick *__restrict next_use,
           const std::uint8_t *__restrict same, std::size_t n,
           std::uint8_t sticky_max)
{
    Addr *const __restrict dm_tags = leg.dmTags.data();
    Addr *const __restrict de_tags = leg.deTags.data();
    std::uint8_t *const __restrict de_sticky = leg.deSticky.data();
    OptLane *const __restrict opt = leg.optLanes.data();
    const Addr mask = leg.setMask;
    std::uint64_t dm_hits = 0, dm_cold = 0;
    std::uint64_t de_cold = 0, de_hit = 0, de_unsticky = 0,
                  de_override = 0, de_bypassed = 0, de_ll = 0;
    std::uint64_t opt_hits = 0, opt_cold = 0, opt_writes = 0,
                  opt_ll = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Addr blk = blocks[i];
        const std::size_t set = static_cast<std::size_t>(blk & mask);
        const bool rerun = same[i] != 0;

        const Addr dm_t = dm_tags[set];
        dm_hits += dm_t == blk;
        dm_cold += dm_t == kAddrInvalid;
        dm_tags[set] = blk;

        if (!LastLine || !rerun) {
            const Addr t = de_tags[set];
            const std::uint8_t s = de_sticky[set];
            const bool h = hit_last.get(blk);
            const unsigned arc = t == kAddrInvalid ? 0u
                                 : t == blk        ? 1u
                                 : s == 0          ? 2u
                                 : h               ? 3u
                                                   : 4u;
            const bool de_bypass = arc == 4;
            de_cold += arc == 0;
            de_hit += arc == 1;
            de_unsticky += arc == 2;
            de_override += arc == 3;
            de_bypassed += de_bypass;
            // Mask arithmetic, not selects: see deChunk.
            const Addr bmask = 0 - static_cast<Addr>(de_bypass);
            de_tags[set] = (t & bmask) | (blk & ~bmask);
            de_sticky[set] =
                de_bypass ? static_cast<std::uint8_t>(s - 1)
                          : sticky_max;
            hit_last.update(blk, de_bypass, arc != 3);
        } else {
            ++de_ll;
        }

        if (!rerun) {
            OptLane &lane = opt[set];
            const Tick next = next_use[i];
            const bool hit = lane.tag == blk;
            const bool cold_miss = lane.tag == kAddrInvalid;
            const bool wins = next < lane.next;
            // Mask arithmetic, not a select: see optChunk.
            const bool write = hit | cold_miss | wins;
            const Addr wmask = 0 - static_cast<Addr>(write);
            lane.tag = (blk & wmask) | (lane.tag & ~wmask);
            lane.next = (next & wmask) | (lane.next & ~wmask);
            opt_hits += hit;
            opt_cold += cold_miss;
            opt_writes += write;
        } else {
            ++opt_ll;
        }
    }
    leg.dmHits += dm_hits;
    leg.dmCold += dm_cold;
    leg.deCnt[0] += de_cold;
    leg.deCnt[1] += de_hit;
    leg.deCnt[2] += de_unsticky;
    leg.deCnt[3] += de_override;
    leg.deCnt[4] += de_bypassed;
    leg.deLlHits += de_ll;
    leg.optHits += opt_hits;
    leg.optCold += opt_cold;
    // Every opt-visible reference resolves to exactly one of hit /
    // cold / evict / bypass: evictions are the writes that were
    // neither hits nor cold fills, bypasses are the non-writes.
    leg.optEvict += opt_writes - opt_hits - opt_cold;
    leg.optBypass += (n - opt_ll) - opt_writes;
    leg.optLlHits += opt_ll;
}

template <typename HitLast>
void
fusedChunkDispatch(KernelLeg &leg, HitLast hit_last,
                   const Addr *blocks, const Tick *next_use,
                   const std::uint8_t *same, std::size_t n,
                   bool last_line, std::uint8_t sticky_max)
{
    if (last_line)
        fusedChunk<true>(leg, hit_last, blocks, next_use, same, n,
                         sticky_max);
    else
        fusedChunk<false>(leg, hit_last, blocks, next_use, same, n,
                          sticky_max);
}

/** Derive the leg's TriadResult from the pass tallies; every counter
 * is the closed-form sum the models would have accumulated. */
TriadResult
legResult(const KernelLeg &leg, std::uint64_t refs)
{
    TriadResult r;

    r.dm.accesses = refs;
    r.dm.hits = leg.dmHits;
    r.dm.misses = refs - leg.dmHits;
    r.dm.coldMisses = leg.dmCold;
    r.dm.fills = r.dm.misses; // allocate-on-miss
    r.dm.evictions = r.dm.misses - leg.dmCold;

    const std::uint64_t de_hits = leg.deLlHits + leg.deCnt[1];
    r.de.accesses = refs;
    r.de.hits = de_hits;
    r.de.misses = refs - de_hits;
    r.de.coldMisses = leg.deCnt[0];
    r.de.fills = leg.deCnt[0] + leg.deCnt[2] + leg.deCnt[3];
    r.de.bypasses = leg.deCnt[4];
    r.de.evictions = leg.deCnt[2] + leg.deCnt[3];

    const std::uint64_t opt_hits = leg.optLlHits + leg.optHits;
    r.opt.accesses = refs;
    r.opt.hits = opt_hits;
    r.opt.misses = refs - opt_hits;
    r.opt.coldMisses = leg.optCold;
    r.opt.fills = leg.optCold + leg.optEvict;
    r.opt.bypasses = leg.optBypass;
    r.opt.evictions = leg.optEvict;

    // The model counts events through FsmEventCounts::note, which
    // compiles to nothing when the build disables it; mirror that so
    // reports stay identical either way.
    if constexpr (FsmEventCounts::enabled)
        for (std::size_t e = 0; e < 5; ++e)
            r.deEvents.byEvent[e] = leg.deCnt[e];
    return r;
}

/** Per-(size, model) wall time of one kernel pass; empty when no
 * metrics collector is installed (mirrors the batched engine). */
struct KernelPassTiming
{
    std::vector<std::uint64_t> dmNs;
    std::vector<std::uint64_t> deNs;
    std::vector<std::uint64_t> optNs;

    bool enabled() const { return !dmNs.empty(); }
};

/** The largest block number of the view (kAddrInvalid when empty),
 * used to size the flat hit-last bitmaps. */
Addr
maxBlockOf(const PackedTraceView &view)
{
    const Addr *blocks = view.blocks();
    const std::size_t n = view.size();
    if (n == 0)
        return kAddrInvalid;
    Addr max_block = 0;
    for (std::size_t i = 0; i < n; ++i)
        max_block = blocks[i] > max_block ? blocks[i] : max_block;
    return max_block;
}

/**
 * Stream @p view through every non-null leg once, in chunks, with the
 * same observability contract as the batched engine's runBatchPass:
 * per-chunk-per-model timing under a metrics collector, chunk and
 * pass spans under a tracer, trace-unit progress, and one
 * ReplayChunks count per chunk.
 */
KernelPassTiming
runKernelPass(const PackedTraceView &view, const NextUseIndex &index,
              const std::string &label,
              std::vector<std::unique_ptr<KernelLeg>> &legs,
              const DynamicExclusionConfig &config)
{
    obs::MetricsCollector *const metrics = obs::activeMetrics();
    obs::Tracer *const tracer = obs::Tracer::active();
    obs::ProgressBar *const progress = obs::ProgressBar::active();

    KernelPassTiming timing;
    if (metrics) {
        timing.dmNs.assign(legs.size(), 0);
        timing.deNs.assign(legs.size(), 0);
        timing.optNs.assign(legs.size(), 0);
    }

    const KernelIsa isa = kernelDispatchIsa();
    const bool last_line = config.useLastLine;
    const std::uint8_t sticky_max = config.stickyMax;
    std::vector<std::uint8_t> same(detail::kBatchChunkRefs);

    const std::uint64_t pass_start = tracer ? tracer->nowNs() : 0;
    const Addr *blocks = view.blocks();
    const Tick *next_use = index.values().data();
    const std::size_t n = view.size();
    Addr prev_block = kAddrInvalid;
    for (std::size_t base = 0; base < n;
         base += detail::kBatchChunkRefs) {
        const std::size_t end =
            std::min(n, base + detail::kBatchChunkRefs);
        const std::size_t len = end - base;
        computeSame(isa, blocks + base, len, prev_block, same.data());
        prev_block = blocks[end - 1];

        const std::uint64_t chunk_start = tracer ? tracer->nowNs() : 0;
        for (std::size_t s = 0; s < legs.size(); ++s) {
            KernelLeg *const leg = legs[s].get();
            if (!leg)
                continue;
            if (!metrics) {
                // No per-model timing wanted: one fused pass per leg.
                if (leg->deHitLast.isFlat())
                    fusedChunkDispatch(
                        *leg, FlatHitLast{leg->deHitLast.flatWords()},
                        blocks + base, next_use + base, same.data(),
                        len, last_line, sticky_max);
                else
                    fusedChunkDispatch(
                        *leg, StoreHitLast{leg->deHitLast.fallback()},
                        blocks + base, next_use + base, same.data(),
                        len, last_line, sticky_max);
                continue;
            }
            const std::uint64_t t0 = obs::monotonicNs();
            dmChunk(*leg, blocks + base, len);
            const std::uint64_t t1 = obs::monotonicNs();
            if (leg->deHitLast.isFlat())
                deChunkDispatch(*leg,
                                FlatHitLast{leg->deHitLast.flatWords()},
                                blocks + base, same.data(), len,
                                last_line, sticky_max);
            else
                deChunkDispatch(*leg,
                                StoreHitLast{leg->deHitLast.fallback()},
                                blocks + base, same.data(), len,
                                last_line, sticky_max);
            const std::uint64_t t2 = obs::monotonicNs();
            optChunk(*leg, blocks + base, next_use + base, same.data(),
                     len);
            timing.dmNs[s] += t1 - t0;
            timing.deNs[s] += t2 - t1;
            timing.optNs[s] += obs::monotonicNs() - t2;
        }
        if (metrics)
            metrics->add(obs::Counter::ReplayChunks, 1);
        if (progress)
            progress->add(len);
        if (tracer)
            tracer->complete("chunk@" + std::to_string(base), "kernel",
                             chunk_start,
                             tracer->nowNs() - chunk_start);
    }
    if (tracer)
        tracer->complete("kernel-replay " + label, "replay",
                         pass_start, tracer->nowNs() - pass_start);
    return timing;
}

/** Record every completed leg into its registered metrics slot (same
 * contract as the batched engine's fillLegMetrics). */
void
fillLegMetrics(const std::string &label,
               const std::vector<std::uint64_t> &sizes,
               std::size_t refs, const KernelPassTiming &timing,
               const std::vector<std::unique_ptr<KernelLeg>> &legs,
               const std::vector<TriadResult> &triads)
{
    obs::MetricsCollector *const metrics = obs::activeMetrics();
    if (!metrics)
        return;
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        if (!legs[s])
            continue;
        obs::LegMetrics *const leg = metrics->leg(label, sizes[s]);
        if (!leg)
            continue;
        leg->refs = refs;
        leg->dm = triads[s].dm;
        leg->de = triads[s].de;
        leg->opt = triads[s].opt;
        leg->deEvents = triads[s].deEvents;
        if (timing.enabled()) {
            leg->dmReplayNs = timing.dmNs[s];
            leg->deReplayNs = timing.deNs[s];
            leg->optReplayNs = timing.optNs[s];
            leg->replayNs = timing.dmNs[s] + timing.deNs[s] +
                            timing.optNs[s];
        }
        leg->done = true;
    }
}

void
checkKernelInputs(const PackedTraceView &view,
                  const NextUseIndex &index, std::uint32_t line_bytes,
                  const DynamicExclusionConfig &config)
{
    DYNEX_ASSERT(index.blockSize() == line_bytes,
                 "index granularity mismatch");
    DYNEX_ASSERT(view.size() <= index.size(),
                 "next-use index shorter than the trace");
    DYNEX_ASSERT(config.stickyMax >= 1,
                 "sticky_max must be at least 1");
}

} // namespace

const char *
kernelIsaName(KernelIsa isa)
{
    return isa == KernelIsa::Avx2 ? "avx2" : "scalar";
}

KernelIsa
kernelDispatchIsa()
{
    if (gForceScalar.load(std::memory_order_relaxed) ||
        envForceScalar() || !cpuHasAvx2())
        return KernelIsa::Scalar;
    return KernelIsa::Avx2;
}

void
setKernelForceScalar(bool force)
{
    gForceScalar.store(force, std::memory_order_relaxed);
}

bool
kernelForceScalar()
{
    return gForceScalar.load(std::memory_order_relaxed);
}

std::vector<TriadResult>
replayTriadKernel(const Trace &trace, const NextUseIndex &index,
                  const std::vector<std::uint64_t> &sizes,
                  std::uint32_t line_bytes,
                  const DynamicExclusionConfig &de_config)
{
    const PackedTraceView view(trace, line_bytes);
    checkKernelInputs(view, index, line_bytes, de_config);
    const Addr max_block = maxBlockOf(view);

    std::vector<std::unique_ptr<KernelLeg>> legs;
    legs.reserve(sizes.size());
    for (const std::uint64_t size : sizes)
        legs.push_back(std::make_unique<KernelLeg>(
            size, line_bytes, max_block, de_config));

    const KernelPassTiming timing =
        runKernelPass(view, index, trace.name(), legs, de_config);

    std::vector<TriadResult> results(sizes.size());
    for (std::size_t s = 0; s < sizes.size(); ++s)
        results[s] = legResult(*legs[s], view.size());
    fillLegMetrics(trace.name(), sizes, view.size(), timing, legs,
                   results);
    return results;
}

TriadBatchOutcome
replayTriadKernelChecked(const Trace &trace, const NextUseIndex &index,
                         const std::vector<std::uint64_t> &sizes,
                         std::uint32_t line_bytes,
                         const DynamicExclusionConfig &de_config,
                         const std::string &bench)
{
    const PackedTraceView view(trace, line_bytes);
    checkKernelInputs(view, index, line_bytes, de_config);
    const std::string &label = bench.empty() ? trace.name() : bench;
    const Addr max_block = maxBlockOf(view);

    TriadBatchOutcome outcome;
    outcome.triads.resize(sizes.size());
    outcome.ok.assign(sizes.size(), 0);

    // A leg that fails setup (or an injected fault) leaves its slot
    // null and is skipped by the pass; legs never interact, so the
    // survivors replay exactly as they would in an unfaulted run.
    std::vector<std::unique_ptr<KernelLeg>> legs(sizes.size());
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        try {
            if (const auto &hook = sweepFaultHook())
                hook(label, sizes[s]);
            legs[s] = std::make_unique<KernelLeg>(
                sizes[s], line_bytes, max_block, de_config);
            outcome.ok[s] = 1;
        } catch (...) {
            legs[s].reset();
            outcome.failures.push_back(
                {s, statusFromException(std::current_exception())});
        }
    }

    const KernelPassTiming timing =
        runKernelPass(view, index, label, legs, de_config);

    for (std::size_t s = 0; s < sizes.size(); ++s)
        if (outcome.ok[s])
            outcome.triads[s] = legResult(*legs[s], view.size());
    fillLegMetrics(label, sizes, view.size(), timing, legs,
                   outcome.triads);
    return outcome;
}

} // namespace dynex
