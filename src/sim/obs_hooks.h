/**
 * @file
 * Internal glue between the sweep engines and the obs layer: tiny
 * helpers that read the active collector/tracer/progress pointers once
 * per leg (or per build), so the engine code stays readable and the
 * cost with observability off stays at a few null checks per leg.
 *
 * This header is sim-internal; the public observability surface is
 * src/obs/.
 */

#ifndef DYNEX_SIM_OBS_HOOKS_H
#define DYNEX_SIM_OBS_HOOKS_H

#include <string>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace_events.h"
#include "sim/runner.h"
#include "trace/next_use.h"
#include "trace/trace.h"

namespace dynex
{
namespace simobs
{

/**
 * Timer for a next-use index build. Construct immediately before the
 * build, call finish(bench) after it: charges wall time and a build
 * count to the counters and emits one "index" span. All no-ops when
 * nothing is installed.
 */
struct IndexBuildTimer
{
    obs::MetricsCollector *const metrics = obs::activeMetrics();
    obs::Tracer *const tracer = obs::Tracer::active();
    std::uint64_t metricsT0 = 0;
    std::uint64_t tracerT0 = 0;

    IndexBuildTimer()
    {
        if (metrics)
            metricsT0 = obs::monotonicNs();
        if (tracer)
            tracerT0 = tracer->nowNs();
    }

    void
    finish(const std::string &bench)
    {
        if (metrics) {
            metrics->add(obs::Counter::IndexBuildNs,
                         obs::monotonicNs() - metricsT0);
            metrics->add(obs::Counter::IndexBuilds, 1);
        }
        if (tracer)
            tracer->complete("index " + bench, "index", tracerT0,
                             tracer->nowNs() - tracerT0);
    }
};

/**
 * Run one (bench, cache size) triad leg through the per-leg engine
 * with observability attached: the leg's wall time and results land in
 * its registered metrics slot, a "leg" span is recorded, and progress
 * advances by the trace length (the leg's replay work in references).
 * Exactly runTriad() when nothing is installed.
 */
inline TriadResult
runTriadLeg(const Trace &trace, const NextUseIndex &index,
            const std::string &bench, std::uint64_t size_bytes,
            std::uint32_t line_bytes,
            const DynamicExclusionConfig &config)
{
    obs::MetricsCollector *const metrics = obs::activeMetrics();
    obs::Tracer *const tracer = obs::Tracer::active();
    const std::uint64_t metrics_t0 = metrics ? obs::monotonicNs() : 0;
    const std::uint64_t tracer_t0 = tracer ? tracer->nowNs() : 0;

    const TriadResult triad =
        runTriad(trace, index, size_bytes, line_bytes, config);

    if (metrics) {
        const std::uint64_t leg_ns = obs::monotonicNs() - metrics_t0;
        if (obs::LegMetrics *const leg =
                metrics->leg(bench, size_bytes)) {
            leg->refs = trace.size();
            leg->dm = triad.dm;
            leg->de = triad.de;
            leg->opt = triad.opt;
            leg->deEvents = triad.deEvents;
            leg->replayNs = leg_ns;
            leg->done = true;
        }
    }
    if (tracer)
        tracer->complete("leg " + bench + " @ " +
                             std::to_string(size_bytes),
                         "leg", tracer_t0,
                         tracer->nowNs() - tracer_t0);
    if (obs::ProgressBar *const progress = obs::ProgressBar::active())
        progress->add(trace.size());
    return triad;
}

} // namespace simobs
} // namespace dynex

#endif // DYNEX_SIM_OBS_HOOKS_H
