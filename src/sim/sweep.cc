#include "sim/sweep.h"

#include "sim/parallel.h"
#include "sim/workloads.h"
#include "trace/next_use.h"
#include "util/logging.h"
#include "util/stats.h"

namespace dynex
{

const std::vector<std::uint64_t> &
paperCacheSizes()
{
    static const std::vector<std::uint64_t> sizes = {
        1024,      2 * 1024,  4 * 1024,  8 * 1024,
        16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024,
    };
    return sizes;
}

const std::vector<std::uint32_t> &
paperLineSizes()
{
    static const std::vector<std::uint32_t> lines = {4, 8, 16, 32, 64};
    return lines;
}

double
SizeSweepPoint::deImprovementPct()
const
{
    return percentReduction(dmMissPct, deMissPct);
}

double
SizeSweepPoint::optImprovementPct()
const
{
    return percentReduction(dmMissPct, optMissPct);
}

double
LineSweepPoint::deImprovementPct()
const
{
    return percentReduction(dmMissPct, deMissPct);
}

double
LineSweepPoint::optImprovementPct()
const
{
    return percentReduction(dmMissPct, optMissPct);
}

std::vector<SizeSweepPoint>
sweepSizes(const Trace &trace, const std::vector<std::uint64_t> &sizes,
           std::uint32_t line_bytes, const DynamicExclusionConfig &config,
           ReplayEngine engine)
{
    const NextUseIndex index(trace, line_bytes, NextUseMode::RunStart);
    std::vector<SizeSweepPoint> points(sizes.size());
    if (engine == ReplayEngine::Batched) {
        const auto triads =
            replayTriadBatch(trace, index, sizes, line_bytes, config);
        for (std::size_t s = 0; s < sizes.size(); ++s)
            points[s] = {sizes[s], triads[s].dmMissPct(),
                         triads[s].deMissPct(), triads[s].optMissPct()};
        return points;
    }
    simParallelFor(sizes.size(), [&](std::size_t s) {
        const TriadResult triad =
            runTriad(trace, index, sizes[s], line_bytes, config);
        points[s] = {sizes[s], triad.dmMissPct(), triad.deMissPct(),
                     triad.optMissPct()};
    });
    return points;
}

std::vector<SizeSweepPoint>
sweepSuiteAverage(const std::vector<std::string> &benchmark_names,
                  Count refs, const std::vector<std::uint64_t> &sizes,
                  std::uint32_t line_bytes,
                  const DynamicExclusionConfig &config, bool data_refs,
                  bool mixed_refs, ReplayEngine engine)
{
    DYNEX_ASSERT(!(data_refs && mixed_refs),
                 "choose one stream kind");
    std::vector<SizeSweepPoint> average(sizes.size());
    for (std::size_t s = 0; s < sizes.size(); ++s)
        average[s].sizeBytes = sizes[s];

    const StreamKind stream = mixed_refs ? StreamKind::Mixed
                              : data_refs ? StreamKind::Data
                                          : StreamKind::Instructions;
    const auto grid = sweepSuiteTriads(benchmark_names, refs, sizes,
                                       line_bytes, config, stream,
                                       engine);
    // Serial reduction in benchmark order: identical floating-point
    // accumulation order to the historical serial loop, so results are
    // bit-identical at any thread count.
    for (const auto &row : grid) {
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            average[s].dmMissPct += row[s].dmMissPct();
            average[s].deMissPct += row[s].deMissPct();
            average[s].optMissPct += row[s].optMissPct();
        }
    }
    const auto n = static_cast<double>(benchmark_names.size());
    for (auto &point : average) {
        point.dmMissPct /= n;
        point.deMissPct /= n;
        point.optMissPct /= n;
    }
    return average;
}

std::vector<LineSweepPoint>
sweepSuiteLineSizes(const std::vector<std::string> &benchmark_names,
                    Count refs, std::uint64_t size_bytes,
                    const std::vector<std::uint32_t> &lines,
                    const DynamicExclusionConfig &config,
                    ReplayEngine engine)
{
    std::vector<LineSweepPoint> average(lines.size());
    for (std::size_t l = 0; l < lines.size(); ++l)
        average[l].lineBytes = lines[l];

    const auto grid = sweepSuiteLineTriads(benchmark_names, refs,
                                           size_bytes, lines, config,
                                           engine);
    for (const auto &row : grid) {
        for (std::size_t l = 0; l < lines.size(); ++l) {
            average[l].dmMissPct += row[l].dmMissPct();
            average[l].deMissPct += row[l].deMissPct();
            average[l].optMissPct += row[l].optMissPct();
        }
    }
    const auto n = static_cast<double>(benchmark_names.size());
    for (auto &point : average) {
        point.dmMissPct /= n;
        point.deMissPct /= n;
        point.optMissPct /= n;
    }
    return average;
}

} // namespace dynex
