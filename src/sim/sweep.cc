#include "sim/sweep.h"

#include <memory>
#include <optional>

#include "sim/kernel.h"
#include "sim/obs_hooks.h"
#include "sim/parallel.h"
#include "sim/workloads.h"
#include "trace/next_use.h"
#include "util/bitops.h"
#include "util/logging.h"
#include "util/stats.h"

namespace dynex
{

const std::vector<std::uint64_t> &
paperCacheSizes()
{
    static const std::vector<std::uint64_t> sizes = {
        1024,      2 * 1024,  4 * 1024,  8 * 1024,
        16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024,
    };
    return sizes;
}

const std::vector<std::uint32_t> &
paperLineSizes()
{
    static const std::vector<std::uint32_t> lines = {4, 8, 16, 32, 64};
    return lines;
}

Status
validateSweepAxis(const std::vector<std::uint64_t> &sizes,
                  std::uint32_t line_bytes)
{
    if (sizes.empty())
        return Status::corruptInput("empty cache-size axis");
    if (sizes.size() > kMaxSweepAxisSizes)
        return Status::resourceLimit(
            "cache-size axis of " + std::to_string(sizes.size()) +
            " entries exceeds the cap of " +
            std::to_string(kMaxSweepAxisSizes));
    std::uint64_t previous = 0;
    for (const std::uint64_t size : sizes) {
        if (!isPowerOfTwo(size))
            return Status::corruptInput(
                "cache size " + std::to_string(size) +
                " is not a power of two");
        if (size < line_bytes)
            return Status::corruptInput(
                "cache size " + std::to_string(size) +
                " is smaller than the " + std::to_string(line_bytes) +
                "-byte line");
        if (size <= previous)
            return Status::corruptInput(
                "cache sizes must be strictly increasing (saw " +
                std::to_string(size) + " after " +
                std::to_string(previous) + ")");
        previous = size;
    }
    return Status();
}

double
SizeSweepPoint::deImprovementPct()
const
{
    return percentReduction(dmMissPct, deMissPct);
}

double
SizeSweepPoint::optImprovementPct()
const
{
    return percentReduction(dmMissPct, optMissPct);
}

double
LineSweepPoint::deImprovementPct()
const
{
    return percentReduction(dmMissPct, deMissPct);
}

double
LineSweepPoint::optImprovementPct()
const
{
    return percentReduction(dmMissPct, optMissPct);
}

namespace
{

/** The shared sweep body; the caller owns the sweep span. */
std::vector<SizeSweepPoint>
sweepSizesImpl(const Trace &trace, const NextUseIndex &index,
               const std::vector<std::uint64_t> &sizes,
               std::uint32_t line_bytes,
               const DynamicExclusionConfig &config, ReplayEngine engine)
{
    DYNEX_ASSERT(index.blockSize() == line_bytes &&
                     index.mode() == NextUseMode::RunStart,
                 "sweepSizes needs a RunStart index at line granularity");
    std::vector<SizeSweepPoint> points(sizes.size());
    if (engine != ReplayEngine::PerLeg) {
        const auto triads =
            engine == ReplayEngine::Kernel
                ? replayTriadKernel(trace, index, sizes, line_bytes,
                                    config)
                : replayTriadBatch(trace, index, sizes, line_bytes,
                                   config);
        for (std::size_t s = 0; s < sizes.size(); ++s)
            points[s] = {sizes[s], triads[s].dmMissPct(),
                         triads[s].deMissPct(), triads[s].optMissPct()};
        return points;
    }
    simParallelFor(sizes.size(), [&](std::size_t s) {
        const TriadResult triad = simobs::runTriadLeg(
            trace, index, trace.name(), sizes[s], line_bytes, config);
        points[s] = {sizes[s], triad.dmMissPct(), triad.deMissPct(),
                     triad.optMissPct()};
    });
    return points;
}

} // namespace

std::vector<SizeSweepPoint>
sweepSizes(const Trace &trace, const std::vector<std::uint64_t> &sizes,
           std::uint32_t line_bytes, const DynamicExclusionConfig &config,
           ReplayEngine engine)
{
    std::optional<obs::ScopedSpan> sweep_span;
    if (obs::Tracer::active())
        sweep_span.emplace("sweep", "sweep " + trace.name());

    simobs::IndexBuildTimer index_timer;
    const NextUseIndex index(trace, line_bytes, NextUseMode::RunStart);
    index_timer.finish(trace.name());
    return sweepSizesImpl(trace, index, sizes, line_bytes, config,
                          engine);
}

std::vector<SizeSweepPoint>
sweepSizes(const Trace &trace, const NextUseIndex &index,
           const std::vector<std::uint64_t> &sizes,
           std::uint32_t line_bytes, const DynamicExclusionConfig &config,
           ReplayEngine engine)
{
    std::optional<obs::ScopedSpan> sweep_span;
    if (obs::Tracer::active())
        sweep_span.emplace("sweep", "sweep " + trace.name());
    return sweepSizesImpl(trace, index, sizes, line_bytes, config,
                          engine);
}

namespace
{

/** The shared checked-sweep body; the caller owns the sweep span and
 * has already built (or fetched) the index. */
SizeSweepOutcome
sweepSizesCheckedImpl(const Trace &trace, const NextUseIndex &index,
                      const std::vector<std::uint64_t> &sizes,
                      std::uint32_t line_bytes,
                      const DynamicExclusionConfig &config,
                      ReplayEngine engine)
{
    DYNEX_ASSERT(index.blockSize() == line_bytes &&
                     index.mode() == NextUseMode::RunStart,
                 "sweepSizesChecked needs a RunStart index at line "
                 "granularity");
    SizeSweepOutcome outcome;
    outcome.points.resize(sizes.size());
    outcome.ok.assign(sizes.size(), 0);
    for (std::size_t s = 0; s < sizes.size(); ++s)
        outcome.points[s].sizeBytes = sizes[s];

    auto fillPoint = [&](std::size_t s, const TriadResult &triad) {
        outcome.points[s] = {sizes[s], triad.dmMissPct(),
                             triad.deMissPct(), triad.optMissPct()};
        outcome.ok[s] = 1;
    };

    if (engine != ReplayEngine::PerLeg) {
        auto batch =
            engine == ReplayEngine::Kernel
                ? replayTriadKernelChecked(trace, index, sizes,
                                           line_bytes, config)
                : replayTriadBatchChecked(trace, index, sizes,
                                          line_bytes, config);
        for (std::size_t s = 0; s < sizes.size(); ++s)
            if (batch.ok[s])
                fillPoint(s, batch.triads[s]);
        for (auto &failure : batch.failures)
            outcome.failures.push_back({trace.name(),
                                        sizes[failure.sizeIndex],
                                        "triad",
                                        std::move(failure.status)});
        return outcome;
    }

    std::vector<Status> leg_status(sizes.size());
    simParallelFor(sizes.size(), [&](std::size_t s) {
        try {
            if (const auto &hook = sweepFaultHook())
                hook(trace.name(), sizes[s]);
            fillPoint(s, simobs::runTriadLeg(trace, index,
                                             trace.name(), sizes[s],
                                             line_bytes, config));
        } catch (...) {
            leg_status[s] =
                statusFromException(std::current_exception());
        }
    });
    for (std::size_t s = 0; s < sizes.size(); ++s)
        if (!outcome.ok[s])
            outcome.failures.push_back(
                {trace.name(), sizes[s], "triad", leg_status[s]});
    return outcome;
}

} // namespace

SizeSweepOutcome
sweepSizesChecked(const Trace &trace,
                  const std::vector<std::uint64_t> &sizes,
                  std::uint32_t line_bytes,
                  const DynamicExclusionConfig &config,
                  ReplayEngine engine)
{
    std::optional<obs::ScopedSpan> sweep_span;
    if (obs::Tracer::active())
        sweep_span.emplace("sweep", "sweep " + trace.name());

    std::unique_ptr<NextUseIndex> index;
    try {
        simobs::IndexBuildTimer index_timer;
        index = std::make_unique<NextUseIndex>(trace, line_bytes,
                                               NextUseMode::RunStart);
        index_timer.finish(trace.name());
    } catch (...) {
        // Without the shared next-use oracle no leg can run.
        const Status status =
            statusFromException(std::current_exception())
                .withContext("next-use index");
        SizeSweepOutcome outcome;
        outcome.points.resize(sizes.size());
        outcome.ok.assign(sizes.size(), 0);
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            outcome.points[s].sizeBytes = sizes[s];
            outcome.failures.push_back(
                {trace.name(), sizes[s], "triad", status});
        }
        return outcome;
    }
    return sweepSizesCheckedImpl(trace, *index, sizes, line_bytes,
                                 config, engine);
}

SizeSweepOutcome
sweepSizesChecked(const Trace &trace, const NextUseIndex &index,
                  const std::vector<std::uint64_t> &sizes,
                  std::uint32_t line_bytes,
                  const DynamicExclusionConfig &config,
                  ReplayEngine engine)
{
    std::optional<obs::ScopedSpan> sweep_span;
    if (obs::Tracer::active())
        sweep_span.emplace("sweep", "sweep " + trace.name());
    return sweepSizesCheckedImpl(trace, index, sizes, line_bytes,
                                 config, engine);
}

std::vector<SizeSweepPoint>
sweepSuiteAverage(const std::vector<std::string> &benchmark_names,
                  Count refs, const std::vector<std::uint64_t> &sizes,
                  std::uint32_t line_bytes,
                  const DynamicExclusionConfig &config, bool data_refs,
                  bool mixed_refs, ReplayEngine engine)
{
    DYNEX_ASSERT(!(data_refs && mixed_refs),
                 "choose one stream kind");
    std::vector<SizeSweepPoint> average(sizes.size());
    for (std::size_t s = 0; s < sizes.size(); ++s)
        average[s].sizeBytes = sizes[s];

    const StreamKind stream = mixed_refs ? StreamKind::Mixed
                              : data_refs ? StreamKind::Data
                                          : StreamKind::Instructions;
    const auto grid = sweepSuiteTriads(benchmark_names, refs, sizes,
                                       line_bytes, config, stream,
                                       engine);
    // Serial reduction in benchmark order: identical floating-point
    // accumulation order to the historical serial loop, so results are
    // bit-identical at any thread count.
    for (const auto &row : grid) {
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            average[s].dmMissPct += row[s].dmMissPct();
            average[s].deMissPct += row[s].deMissPct();
            average[s].optMissPct += row[s].optMissPct();
        }
    }
    const auto n = static_cast<double>(benchmark_names.size());
    for (auto &point : average) {
        point.dmMissPct /= n;
        point.deMissPct /= n;
        point.optMissPct /= n;
    }
    return average;
}

SuiteAverageOutcome
sweepSuiteAverageChecked(const std::vector<std::string> &benchmark_names,
                         Count refs,
                         const std::vector<std::uint64_t> &sizes,
                         std::uint32_t line_bytes,
                         const DynamicExclusionConfig &config,
                         bool data_refs, bool mixed_refs,
                         ReplayEngine engine)
{
    DYNEX_ASSERT(!(data_refs && mixed_refs),
                 "choose one stream kind");
    SuiteAverageOutcome outcome;
    outcome.points.resize(sizes.size());
    outcome.ok.assign(sizes.size(), 0);
    outcome.contributors.assign(sizes.size(), 0);
    for (std::size_t s = 0; s < sizes.size(); ++s)
        outcome.points[s].sizeBytes = sizes[s];

    const StreamKind stream = mixed_refs ? StreamKind::Mixed
                              : data_refs ? StreamKind::Data
                                          : StreamKind::Instructions;
    auto suite = sweepSuiteTriadsChecked(benchmark_names, refs, sizes,
                                         line_bytes, config, stream,
                                         engine);
    outcome.failures = std::move(suite.failures);

    // Same serial benchmark-order accumulation as the unchecked
    // reduction; a failed leg simply contributes nothing to its size.
    for (std::size_t b = 0; b < suite.grid.size(); ++b) {
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            if (!suite.ok[b][s])
                continue;
            outcome.points[s].dmMissPct += suite.grid[b][s].dmMissPct();
            outcome.points[s].deMissPct += suite.grid[b][s].deMissPct();
            outcome.points[s].optMissPct +=
                suite.grid[b][s].optMissPct();
            ++outcome.contributors[s];
        }
    }
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        if (outcome.contributors[s] == 0)
            continue;
        const auto n = static_cast<double>(outcome.contributors[s]);
        outcome.points[s].dmMissPct /= n;
        outcome.points[s].deMissPct /= n;
        outcome.points[s].optMissPct /= n;
        outcome.ok[s] = 1;
    }
    return outcome;
}

std::vector<LineSweepPoint>
sweepSuiteLineSizes(const std::vector<std::string> &benchmark_names,
                    Count refs, std::uint64_t size_bytes,
                    const std::vector<std::uint32_t> &lines,
                    const DynamicExclusionConfig &config,
                    ReplayEngine engine)
{
    std::vector<LineSweepPoint> average(lines.size());
    for (std::size_t l = 0; l < lines.size(); ++l)
        average[l].lineBytes = lines[l];

    const auto grid = sweepSuiteLineTriads(benchmark_names, refs,
                                           size_bytes, lines, config,
                                           engine);
    for (const auto &row : grid) {
        for (std::size_t l = 0; l < lines.size(); ++l) {
            average[l].dmMissPct += row[l].dmMissPct();
            average[l].deMissPct += row[l].deMissPct();
            average[l].optMissPct += row[l].optMissPct();
        }
    }
    const auto n = static_cast<double>(benchmark_names.size());
    for (auto &point : average) {
        point.dmMissPct /= n;
        point.deMissPct /= n;
        point.optMissPct /= n;
    }
    return average;
}

} // namespace dynex
