#include "sim/sweep.h"

#include "sim/workloads.h"
#include "trace/next_use.h"
#include "util/logging.h"
#include "util/stats.h"

namespace dynex
{

const std::vector<std::uint64_t> &
paperCacheSizes()
{
    static const std::vector<std::uint64_t> sizes = {
        1024,      2 * 1024,  4 * 1024,  8 * 1024,
        16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024,
    };
    return sizes;
}

const std::vector<std::uint32_t> &
paperLineSizes()
{
    static const std::vector<std::uint32_t> lines = {4, 8, 16, 32, 64};
    return lines;
}

double
SizeSweepPoint::deImprovementPct()
const
{
    return percentReduction(dmMissPct, deMissPct);
}

double
SizeSweepPoint::optImprovementPct()
const
{
    return percentReduction(dmMissPct, optMissPct);
}

double
LineSweepPoint::deImprovementPct()
const
{
    return percentReduction(dmMissPct, deMissPct);
}

double
LineSweepPoint::optImprovementPct()
const
{
    return percentReduction(dmMissPct, optMissPct);
}

std::vector<SizeSweepPoint>
sweepSizes(const Trace &trace, const std::vector<std::uint64_t> &sizes,
           std::uint32_t line_bytes, const DynamicExclusionConfig &config)
{
    const NextUseIndex index(trace, line_bytes, NextUseMode::RunStart);
    std::vector<SizeSweepPoint> points;
    points.reserve(sizes.size());
    for (const std::uint64_t size : sizes) {
        const TriadResult triad =
            runTriad(trace, index, size, line_bytes, config);
        points.push_back({size, triad.dmMissPct(), triad.deMissPct(),
                          triad.optMissPct()});
    }
    return points;
}

std::vector<SizeSweepPoint>
sweepSuiteAverage(const std::vector<std::string> &benchmark_names,
                  Count refs, const std::vector<std::uint64_t> &sizes,
                  std::uint32_t line_bytes,
                  const DynamicExclusionConfig &config, bool data_refs,
                  bool mixed_refs)
{
    DYNEX_ASSERT(!(data_refs && mixed_refs),
                 "choose one stream kind");
    std::vector<SizeSweepPoint> average(sizes.size());
    for (std::size_t s = 0; s < sizes.size(); ++s)
        average[s].sizeBytes = sizes[s];

    for (const auto &name : benchmark_names) {
        const auto trace = mixed_refs ? Workloads::mixed(name, refs)
                           : data_refs
                               ? Workloads::data(name, refs)
                               : Workloads::instructions(name, refs);
        const auto points = sweepSizes(*trace, sizes, line_bytes, config);
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            average[s].dmMissPct += points[s].dmMissPct;
            average[s].deMissPct += points[s].deMissPct;
            average[s].optMissPct += points[s].optMissPct;
        }
    }
    const auto n = static_cast<double>(benchmark_names.size());
    for (auto &point : average) {
        point.dmMissPct /= n;
        point.deMissPct /= n;
        point.optMissPct /= n;
    }
    return average;
}

std::vector<LineSweepPoint>
sweepSuiteLineSizes(const std::vector<std::string> &benchmark_names,
                    Count refs, std::uint64_t size_bytes,
                    const std::vector<std::uint32_t> &lines,
                    const DynamicExclusionConfig &config)
{
    std::vector<LineSweepPoint> average(lines.size());
    for (std::size_t l = 0; l < lines.size(); ++l)
        average[l].lineBytes = lines[l];

    for (const auto &name : benchmark_names) {
        const auto trace = Workloads::instructions(name, refs);
        for (std::size_t l = 0; l < lines.size(); ++l) {
            const NextUseIndex index(*trace, lines[l],
                                     NextUseMode::RunStart);
            const TriadResult triad =
                runTriad(*trace, index, size_bytes, lines[l], config);
            average[l].dmMissPct += triad.dmMissPct();
            average[l].deMissPct += triad.deMissPct();
            average[l].optMissPct += triad.optMissPct();
        }
    }
    const auto n = static_cast<double>(benchmark_names.size());
    for (auto &point : average) {
        point.dmMissPct /= n;
        point.deMissPct /= n;
        point.optMissPct /= n;
    }
    return average;
}

} // namespace dynex
