/**
 * @file
 * A simple average-memory-access-time (AMAT) model, for the paper's
 * Section 1 argument: direct-mapped caches often win overall despite
 * higher miss rates because their hit path is faster [Hil87, Prz88].
 * Dynamic exclusion attacks the miss rate without touching the hit
 * path, so its AMAT combines direct-mapped hit time with a reduced
 * miss rate.
 */

#ifndef DYNEX_SIM_TIMING_H
#define DYNEX_SIM_TIMING_H

#include <string>

#include "cache/stats.h"

namespace dynex
{

/** Cycle-cost parameters of one cache configuration. */
struct TimingModel
{
    /** Cycles to satisfy a hit (the cache's access path). */
    double hitCycles = 1.0;

    /** Additional cycles to satisfy a miss from the next level. */
    double missPenaltyCycles = 20.0;

    /**
     * Average memory access time in cycles for @p stats:
     * hit time + miss rate * miss penalty.
     */
    double
    amat(const CacheStats &stats) const
    {
        return hitCycles + stats.missRate() * missPenaltyCycles;
    }

    /** Miss rate above which this configuration loses to @p faster:
     * the break-even point of the classical trade-off. */
    double
    breakEvenMissRate(const TimingModel &faster,
                      double faster_miss_rate) const
    {
        return (faster.hitCycles - hitCycles +
                faster_miss_rate * faster.missPenaltyCycles) /
               missPenaltyCycles;
    }
};

/**
 * The paper-era default costs: single-cycle direct-mapped hits, a
 * fraction of a cycle extra for set-associative ways (the mux +
 * compare on the critical path [Hil87]), and a 1990s-scale miss
 * penalty.
 */
struct DefaultTimings
{
    static constexpr double kDirectMappedHit = 1.0;
    static constexpr double kSetAssocExtra = 0.4;
    static constexpr double kMissPenalty = 16.0;

    static TimingModel
    directMapped()
    {
        return {kDirectMappedHit, kMissPenalty};
    }

    static TimingModel
    setAssociative()
    {
        return {kDirectMappedHit + kSetAssocExtra, kMissPenalty};
    }
};

} // namespace dynex

#endif // DYNEX_SIM_TIMING_H
