#include "sim/parallel.h"

#include <memory>
#include <optional>
#include <sstream>

#include "sim/kernel.h"
#include "sim/obs_hooks.h"
#include "sim/workloads.h"
#include "trace/next_use.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace dynex
{

std::string
FailedLeg::toString() const
{
    std::ostringstream oss;
    oss << bench << " @ "
        << (sizeBytes ? formatSize(sizeBytes) : std::string("all"))
        << " [" << model << "]: " << status.toString();
    return oss.str();
}

std::shared_ptr<const Trace>
loadStream(const std::string &name, Count refs, StreamKind stream)
{
    obs::MetricsCollector *const metrics = obs::activeMetrics();
    obs::Tracer *const tracer = obs::Tracer::active();
    const std::uint64_t metrics_t0 = metrics ? obs::monotonicNs() : 0;
    const std::uint64_t tracer_t0 = tracer ? tracer->nowNs() : 0;

    std::shared_ptr<const Trace> trace;
    switch (stream) {
      case StreamKind::Data:
        trace = Workloads::data(name, refs);
        break;
      case StreamKind::Mixed:
        trace = Workloads::mixed(name, refs);
        break;
      case StreamKind::Instructions:
        trace = Workloads::instructions(name, refs);
        break;
    }

    if (metrics) {
        metrics->add(obs::Counter::TraceLoadNs,
                     obs::monotonicNs() - metrics_t0);
        metrics->add(obs::Counter::TraceLoadRefs, trace->size());
    }
    if (tracer)
        tracer->complete("load " + name, "load", tracer_t0,
                         tracer->nowNs() - tracer_t0);
    return trace;
}

void
simParallelFor(std::size_t n,
               const std::function<void(std::size_t)> &body)
{
    ThreadPool::global().parallelFor(n, body);
}

std::vector<std::vector<TriadResult>>
sweepSuiteTriads(const std::vector<std::string> &benchmark_names,
                 Count refs, const std::vector<std::uint64_t> &sizes,
                 std::uint32_t line_bytes,
                 const DynamicExclusionConfig &config, StreamKind stream,
                 ReplayEngine engine)
{
    std::vector<std::vector<TriadResult>> grid(benchmark_names.size());
    simParallelFor(benchmark_names.size(), [&](std::size_t b) {
        const std::string &bench = benchmark_names[b];
        std::optional<obs::ScopedSpan> bench_span;
        if (obs::Tracer::active())
            bench_span.emplace("bench", "bench " + bench);
        const auto trace = loadStream(bench, refs, stream);
        // Per-worker scratch: consecutive benchmarks on one pool
        // thread reuse the backward-pass table allocation.
        thread_local NextUseScratch scratch;
        simobs::IndexBuildTimer index_timer;
        const NextUseIndex index(*trace, line_bytes,
                                 NextUseMode::RunStart, &scratch);
        index_timer.finish(bench);
        auto &row = grid[b];
        if (engine != ReplayEngine::PerLeg) {
            // One pass over the trace feeds every (size, model) leg of
            // this benchmark; parallelism comes from the benchmark
            // fan-out above.
            row = engine == ReplayEngine::Kernel
                      ? replayTriadKernel(*trace, index, sizes,
                                          line_bytes, config)
                      : replayTriadBatch(*trace, index, sizes,
                                         line_bytes, config);
            return;
        }
        row.resize(sizes.size());
        simParallelFor(sizes.size(), [&](std::size_t s) {
            row[s] = simobs::runTriadLeg(*trace, index, bench,
                                         sizes[s], line_bytes, config);
        });
    });
    return grid;
}

SuiteSweepOutcome
sweepSuiteTriadsChecked(const std::vector<std::string> &benchmark_names,
                        Count refs,
                        const std::vector<std::uint64_t> &sizes,
                        std::uint32_t line_bytes,
                        const DynamicExclusionConfig &config,
                        StreamKind stream, ReplayEngine engine)
{
    const std::size_t benches = benchmark_names.size();
    SuiteSweepOutcome outcome;
    outcome.grid.assign(benches,
                        std::vector<TriadResult>(sizes.size()));
    outcome.ok.assign(benches,
                      std::vector<std::uint8_t>(sizes.size(), 0));

    // Failures land in per-benchmark slots and are concatenated
    // serially afterwards, so the failure list (like the grid) is
    // deterministic at any worker count.
    std::vector<std::vector<FailedLeg>> per_bench(benches);

    const auto escaped = ThreadPool::global().parallelForCollect(
        benches, [&](std::size_t b) {
            const std::string &bench = benchmark_names[b];
            std::optional<obs::ScopedSpan> bench_span;
            if (obs::Tracer::active())
                bench_span.emplace("bench", "bench " + bench);
            std::shared_ptr<const Trace> trace;
            std::unique_ptr<NextUseIndex> index;
            try {
                if (const auto &hook = sweepFaultHook())
                    hook(bench, 0);
                trace = loadStream(bench, refs, stream);
                thread_local NextUseScratch scratch;
                simobs::IndexBuildTimer index_timer;
                index = std::make_unique<NextUseIndex>(
                    *trace, line_bytes, NextUseMode::RunStart,
                    &scratch);
                index_timer.finish(bench);
            } catch (...) {
                per_bench[b].push_back(
                    {bench, 0, "triad",
                     statusFromException(std::current_exception())});
                return;
            }
            if (engine != ReplayEngine::PerLeg) {
                auto batch =
                    engine == ReplayEngine::Kernel
                        ? replayTriadKernelChecked(*trace, *index,
                                                   sizes, line_bytes,
                                                   config, bench)
                        : replayTriadBatchChecked(*trace, *index,
                                                  sizes, line_bytes,
                                                  config, bench);
                outcome.grid[b] = std::move(batch.triads);
                outcome.ok[b] = std::move(batch.ok);
                for (auto &failure : batch.failures)
                    per_bench[b].push_back(
                        {bench, sizes[failure.sizeIndex], "triad",
                         std::move(failure.status)});
                return;
            }
            std::vector<Status> leg_status(sizes.size());
            simParallelFor(sizes.size(), [&](std::size_t s) {
                try {
                    if (const auto &hook = sweepFaultHook())
                        hook(bench, sizes[s]);
                    outcome.grid[b][s] = simobs::runTriadLeg(
                        *trace, *index, bench, sizes[s], line_bytes,
                        config);
                    outcome.ok[b][s] = 1;
                } catch (...) {
                    leg_status[s] = statusFromException(
                        std::current_exception());
                }
            });
            for (std::size_t s = 0; s < sizes.size(); ++s)
                if (!outcome.ok[b][s])
                    per_bench[b].push_back({bench, sizes[s], "triad",
                                            leg_status[s]});
        });

    // A failure that escaped the per-leg capture (e.g. an allocation
    // failure while recording one) still only voids its own benchmark.
    for (const auto &e : escaped) {
        outcome.ok[e.index].assign(sizes.size(), 0);
        per_bench[e.index].clear();
        per_bench[e.index].push_back({benchmark_names[e.index], 0,
                                      "triad",
                                      statusFromException(e.error)});
    }

    for (auto &failures : per_bench)
        for (auto &failure : failures)
            outcome.failures.push_back(std::move(failure));
    return outcome;
}

std::vector<std::vector<TriadResult>>
sweepSuiteLineTriads(const std::vector<std::string> &benchmark_names,
                     Count refs, std::uint64_t size_bytes,
                     const std::vector<std::uint32_t> &lines,
                     const DynamicExclusionConfig &config,
                     ReplayEngine engine)
{
    std::vector<std::vector<TriadResult>> grid(benchmark_names.size());
    simParallelFor(benchmark_names.size(), [&](std::size_t b) {
        const std::string &bench = benchmark_names[b];
        std::optional<obs::ScopedSpan> bench_span;
        if (obs::Tracer::active())
            bench_span.emplace("bench", "bench " + bench);
        const auto trace =
            loadStream(bench, refs, StreamKind::Instructions);
        auto &row = grid[b];
        row.resize(lines.size());
        if (engine != ReplayEngine::PerLeg) {
            // Serial over line sizes so every index build of this
            // benchmark reuses one scratch table; each line point's
            // three models replay in a single trace pass.
            NextUseScratch scratch;
            const std::vector<std::uint64_t> one_size = {size_bytes};
            for (std::size_t l = 0; l < lines.size(); ++l) {
                simobs::IndexBuildTimer index_timer;
                const NextUseIndex index(*trace, lines[l],
                                         NextUseMode::RunStart,
                                         &scratch);
                index_timer.finish(bench);
                row[l] = engine == ReplayEngine::Kernel
                             ? replayTriadKernel(*trace, index,
                                                 one_size, lines[l],
                                                 config)[0]
                             : replayTriadBatch(*trace, index,
                                                one_size, lines[l],
                                                config)[0];
            }
            return;
        }
        simParallelFor(lines.size(), [&](std::size_t l) {
            simobs::IndexBuildTimer index_timer;
            const NextUseIndex index(*trace, lines[l],
                                     NextUseMode::RunStart);
            index_timer.finish(bench);
            row[l] = runTriad(*trace, index, size_bytes, lines[l],
                              config);
        });
    });
    return grid;
}

} // namespace dynex
