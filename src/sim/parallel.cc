#include "sim/parallel.h"

#include "sim/workloads.h"
#include "trace/next_use.h"
#include "util/thread_pool.h"

namespace dynex
{

std::shared_ptr<const Trace>
loadStream(const std::string &name, Count refs, StreamKind stream)
{
    switch (stream) {
      case StreamKind::Data:
        return Workloads::data(name, refs);
      case StreamKind::Mixed:
        return Workloads::mixed(name, refs);
      case StreamKind::Instructions:
        break;
    }
    return Workloads::instructions(name, refs);
}

void
simParallelFor(std::size_t n,
               const std::function<void(std::size_t)> &body)
{
    ThreadPool::global().parallelFor(n, body);
}

std::vector<std::vector<TriadResult>>
sweepSuiteTriads(const std::vector<std::string> &benchmark_names,
                 Count refs, const std::vector<std::uint64_t> &sizes,
                 std::uint32_t line_bytes,
                 const DynamicExclusionConfig &config, StreamKind stream,
                 ReplayEngine engine)
{
    std::vector<std::vector<TriadResult>> grid(benchmark_names.size());
    simParallelFor(benchmark_names.size(), [&](std::size_t b) {
        const auto trace =
            loadStream(benchmark_names[b], refs, stream);
        const NextUseIndex index(*trace, line_bytes,
                                 NextUseMode::RunStart);
        auto &row = grid[b];
        if (engine == ReplayEngine::Batched) {
            // One pass over the trace feeds every (size, model) leg of
            // this benchmark; parallelism comes from the benchmark
            // fan-out above.
            row = replayTriadBatch(*trace, index, sizes, line_bytes,
                                   config);
            return;
        }
        row.resize(sizes.size());
        simParallelFor(sizes.size(), [&](std::size_t s) {
            row[s] = runTriad(*trace, index, sizes[s], line_bytes,
                              config);
        });
    });
    return grid;
}

std::vector<std::vector<TriadResult>>
sweepSuiteLineTriads(const std::vector<std::string> &benchmark_names,
                     Count refs, std::uint64_t size_bytes,
                     const std::vector<std::uint32_t> &lines,
                     const DynamicExclusionConfig &config,
                     ReplayEngine engine)
{
    std::vector<std::vector<TriadResult>> grid(benchmark_names.size());
    simParallelFor(benchmark_names.size(), [&](std::size_t b) {
        const auto trace = loadStream(benchmark_names[b], refs,
                                      StreamKind::Instructions);
        auto &row = grid[b];
        row.resize(lines.size());
        if (engine == ReplayEngine::Batched) {
            // Serial over line sizes so every index build of this
            // benchmark reuses one scratch table; each line point's
            // three models replay in a single trace pass.
            NextUseScratch scratch;
            const std::vector<std::uint64_t> one_size = {size_bytes};
            for (std::size_t l = 0; l < lines.size(); ++l) {
                const NextUseIndex index(*trace, lines[l],
                                         NextUseMode::RunStart,
                                         &scratch);
                row[l] = replayTriadBatch(*trace, index, one_size,
                                          lines[l], config)[0];
            }
            return;
        }
        simParallelFor(lines.size(), [&](std::size_t l) {
            const NextUseIndex index(*trace, lines[l],
                                     NextUseMode::RunStart);
            row[l] = runTriad(*trace, index, size_bytes, lines[l],
                              config);
        });
    });
    return grid;
}

} // namespace dynex
