/**
 * @file
 * Structured JSONL logging for the serving path, plus the shared
 * stderr sink mutex that keeps log lines and ProgressBar repaints
 * from tearing each other mid-line.
 *
 * Every line is one JSON object: {"ts-ms":...,"level":"info",
 * "event":"request",...fields...}. Fields are appended through a
 * small builder (Line) whose destructor emits the finished line under
 * sinkMutex(); when a progress bar is installed the logger first
 * clears the bar's line (`\r\x1b[K`) and pokes a repaint afterwards,
 * so a watching terminal never sees a log line spliced into the bar.
 *
 * Info/debug lines pass through a token bucket (refilled from
 * monotonicNs) so a hot server cannot melt its own stderr; warn and
 * error lines are exempt. Suppressed lines are counted, and the next
 * line that does get through carries a "dropped" field so the gap is
 * visible in the stream itself.
 */

#ifndef DYNEX_OBS_LOG_H
#define DYNEX_OBS_LOG_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace dynex
{
namespace obs
{

/** Severity of a log line. */
enum class LogLevel : std::uint8_t
{
    Debug = 0,
    Info,
    Warn,
    Error,
};

/** Stable lowercase name ("debug", "info", "warn", "error"). */
const char *logLevelName(LogLevel level);

/** Parse a level name; @return false (leaving @p level alone) on an
 * unknown name. */
bool parseLogLevel(std::string_view name, LogLevel &level);

/**
 * The process-wide stderr sink mutex. Everything that writes partial
 * lines to stderr (the logger, ProgressBar repaints) holds it across
 * the write, so concurrent writers interleave at line granularity
 * only. Lock ordering: ProgressBar's drawMutex may be held when this
 * is taken; never take drawMutex while holding this.
 */
std::mutex &sinkMutex();

class Logger;

/**
 * One line under construction. Append fields, then let the Line go
 * out of scope — the destructor emits. An inert Line (from a
 * suppressed or below-threshold call) swallows every append.
 */
class LogLine
{
  public:
    LogLine(LogLine &&other) noexcept;
    LogLine(const LogLine &) = delete;
    LogLine &operator=(const LogLine &) = delete;
    LogLine &operator=(LogLine &&) = delete;
    ~LogLine();

    LogLine &str(std::string_view key, std::string_view value);
    LogLine &u64(std::string_view key, std::uint64_t value);
    LogLine &i64(std::string_view key, std::int64_t value);
    /** Hex-rendered u64, for trace ids ("0x1f2e..."). */
    LogLine &hex(std::string_view key, std::uint64_t value);
    LogLine &boolean(std::string_view key, bool value);

  private:
    friend class Logger;
    LogLine(Logger *owner, LogLevel level, std::string_view event,
            std::uint64_t dropped);

    Logger *logger; ///< nullptr when inert
    std::string body;
};

/** Logger configuration (namespace scope so the constructor's default
 * argument can use the member initializers). */
struct LoggerOptions
{
    LogLevel minLevel = LogLevel::Info;
    std::FILE *sink = stderr;
    /** Info/debug lines admitted per second (token bucket). 0
     * disables rate limiting. */
    std::uint32_t ratePerSec = 200;
    /** Bucket depth: the burst admitted after an idle stretch. */
    std::uint32_t burst = 400;
};

/**
 * A leveled, rate-limited JSONL logger. Install one per process with
 * setActive; callers fetch it with Logger::active() (one relaxed
 * atomic load, nullptr when logging is off) and build lines with
 * line().
 */
class Logger
{
  public:
    using Options = LoggerOptions;

    explicit Logger(Options options = {});
    Logger(const Logger &) = delete;
    Logger &operator=(const Logger &) = delete;

    /** The installed logger, or nullptr: one relaxed atomic load. */
    static Logger *active();

    /** Install @p logger (nullptr disables). Caller owns it. */
    static void setActive(Logger *logger);

    /**
     * Start a line. Returns an inert builder when @p level is below
     * the threshold or the rate limiter suppresses it (warn/error are
     * never suppressed).
     */
    LogLine line(LogLevel level, std::string_view event);

    /** Lines suppressed by the rate limiter so far. */
    std::uint64_t droppedLines() const
    {
        return dropped.load(std::memory_order_relaxed);
    }

    LogLevel minLevel() const { return opts.minLevel; }

  private:
    friend class LogLine;

    /** Take one token; @return false when the bucket is empty. */
    bool admit();

    /** Emit @p body (a complete JSON object) under sinkMutex(). */
    void emit(const std::string &body);

    Options opts;
    std::atomic<std::uint64_t> dropped{0};
    /** Drops not yet reported inside an emitted line. */
    std::atomic<std::uint64_t> pendingDropped{0};

    std::mutex bucketMutex;
    double tokens;
    std::uint64_t lastRefillNs;
};

} // namespace obs
} // namespace dynex

#endif // DYNEX_OBS_LOG_H
