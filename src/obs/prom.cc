#include "obs/prom.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>

namespace dynex
{
namespace obs
{

namespace
{

/** "lat-e2e-sweep-le-2047" -> series "lat-e2e-sweep", ns 2047. */
bool
splitBucketRow(const std::string &name, std::string &series,
               std::uint64_t &upper_ns)
{
    const std::size_t pos = name.rfind("-le-");
    if (pos == std::string::npos || name.compare(0, 4, "lat-") != 0)
        return false;
    const std::string digits = name.substr(pos + 4);
    if (digits.empty())
        return false;
    upper_ns = 0;
    for (const char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        upper_ns = upper_ns * 10 + static_cast<std::uint64_t>(c - '0');
    }
    series = name.substr(0, pos);
    return true;
}

std::string
promName(const std::string &row_name)
{
    std::string out = "dynex_";
    for (const char c : row_name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_';
        out += ok ? c : '_';
    }
    return out;
}

bool
validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    const auto headOk = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
               c == ':';
    };
    if (!headOk(name[0]))
        return false;
    for (const char c : name.substr(1))
        if (!headOk(c) && !std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

Status
parseError(std::size_t line_no, const std::string &what)
{
    return Status::corruptInput("prom line " + std::to_string(line_no) +
                                ": " + what);
}

} // namespace

std::string
renderProm(const StatsRows &rows)
{
    struct Series
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
        std::uint64_t count = 0;
        std::uint64_t sumUs = 0;
    };
    std::vector<std::string> seriesOrder;
    std::map<std::string, Series> series;
    // First touch registers the family in emission order, whichever of
    // the count/sum/bucket rows arrives first (the exporter emits the
    // count row before the buckets, so the map entry must not be
    // created behind seriesOrder's back).
    const auto seriesRef = [&](const std::string &owner) -> Series & {
        if (series.find(owner) == series.end())
            seriesOrder.push_back(owner);
        return series[owner];
    };

    std::string out;
    for (const auto &[name, value] : rows) {
        std::string owner;
        std::uint64_t upperNs = 0;
        if (splitBucketRow(name, owner, upperNs)) {
            seriesRef(owner).buckets.emplace_back(upperNs, value);
            continue;
        }
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, "-count") == 0) {
            const std::string base = name.substr(0, name.size() - 6);
            if (base.compare(0, 4, "lat-") == 0)
                seriesRef(base).count = value;
        }
        if (name.size() > 7 &&
            name.compare(name.size() - 7, 7, "-sum-us") == 0) {
            const std::string base = name.substr(0, name.size() - 7);
            if (base.compare(0, 4, "lat-") == 0)
                seriesRef(base).sumUs = value;
        }
        const std::string metric = promName(name);
        out += "# TYPE " + metric + " gauge\n";
        out += metric + ' ' + std::to_string(value) + '\n';
    }

    for (const std::string &owner : seriesOrder) {
        const Series &s = series[owner];
        const std::string family = promName(owner) + "_ns";
        out += "# TYPE " + family + " histogram\n";
        for (const auto &[upperNs, cumulative] : s.buckets)
            out += family + "_bucket{le=\"" + std::to_string(upperNs) +
                   "\"} " + std::to_string(cumulative) + '\n';
        out += family + "_bucket{le=\"+Inf\"} " +
               std::to_string(s.count) + '\n';
        out += family + "_sum " + std::to_string(s.sumUs * 1000) + '\n';
        out += family + "_count " + std::to_string(s.count) + '\n';
    }
    return out;
}

Status
promStrictParse(std::string_view text)
{
    // Per-family bookkeeping for the end-of-input histogram checks.
    struct Hist
    {
        double lastLe = -1.0;
        std::uint64_t lastCount = 0;
        bool sawInf = false;
        std::uint64_t infCount = 0;
        bool sawCount = false;
        std::uint64_t count = 0;
        bool sawSum = false;
    };
    std::map<std::string, char> types; // 'g'/'c'/'h'/'u'
    std::map<std::string, Hist> hists;

    std::size_t lineNo = 0;
    std::size_t at = 0;
    while (at < text.size()) {
        std::size_t end = text.find('\n', at);
        if (end == std::string_view::npos)
            end = text.size();
        const std::string line(text.substr(at, end - at));
        at = end + 1;
        ++lineNo;
        if (line.empty())
            continue;

        if (line[0] == '#') {
            if (line.compare(0, 7, "# HELP ") == 0)
                continue;
            if (line.compare(0, 7, "# TYPE ") != 0)
                return parseError(lineNo, "unknown comment form");
            const std::size_t nameEnd = line.find(' ', 7);
            if (nameEnd == std::string::npos)
                return parseError(lineNo, "TYPE without a type");
            const std::string family = line.substr(7, nameEnd - 7);
            const std::string kind = line.substr(nameEnd + 1);
            if (!validMetricName(family))
                return parseError(lineNo,
                                  "bad metric name '" + family + "'");
            if (types.count(family))
                return parseError(lineNo, "family '" + family +
                                              "' declared twice");
            char code = 0;
            if (kind == "gauge")
                code = 'g';
            else if (kind == "counter")
                code = 'c';
            else if (kind == "histogram")
                code = 'h';
            else if (kind == "summary" || kind == "untyped")
                code = 'u';
            else
                return parseError(lineNo, "unknown type '" + kind + "'");
            types[family] = code;
            continue;
        }

        // Sample: name[{labels}] value
        std::size_t nameEnd = 0;
        while (nameEnd < line.size() && line[nameEnd] != '{' &&
               line[nameEnd] != ' ')
            ++nameEnd;
        const std::string name = line.substr(0, nameEnd);
        if (!validMetricName(name))
            return parseError(lineNo, "bad sample name '" + name + "'");

        std::string leValue;
        bool hasLe = false;
        std::size_t cursor = nameEnd;
        if (cursor < line.size() && line[cursor] == '{') {
            const std::size_t close = line.find('}', cursor);
            if (close == std::string::npos)
                return parseError(lineNo, "unterminated label set");
            std::string labels = line.substr(cursor + 1, close - cursor - 1);
            cursor = close + 1;
            // key="value"[,key="value"...]
            std::size_t p = 0;
            while (p < labels.size()) {
                const std::size_t eq = labels.find('=', p);
                if (eq == std::string::npos ||
                    eq + 1 >= labels.size() || labels[eq + 1] != '"')
                    return parseError(lineNo, "malformed label");
                const std::string key = labels.substr(p, eq - p);
                if (!validMetricName(key))
                    return parseError(lineNo,
                                      "bad label name '" + key + "'");
                std::size_t q = eq + 2;
                std::string value;
                while (q < labels.size() && labels[q] != '"') {
                    if (labels[q] == '\\' && q + 1 < labels.size())
                        ++q;
                    value += labels[q++];
                }
                if (q >= labels.size())
                    return parseError(lineNo, "unterminated label value");
                if (key == "le") {
                    hasLe = true;
                    leValue = value;
                }
                p = q + 1;
                if (p < labels.size()) {
                    if (labels[p] != ',')
                        return parseError(lineNo,
                                          "expected ',' between labels");
                    ++p;
                }
            }
        }
        if (cursor >= line.size() || line[cursor] != ' ')
            return parseError(lineNo, "missing value separator");
        const std::string valueText = line.substr(cursor + 1);
        char *parsed = nullptr;
        const double value =
            std::strtod(valueText.c_str(), &parsed);
        const bool isInfLiteral =
            valueText == "+Inf" || valueText == "-Inf" ||
            valueText == "NaN";
        if (!isInfLiteral &&
            (parsed == valueText.c_str() || *parsed != '\0'))
            return parseError(lineNo,
                              "bad sample value '" + valueText + "'");

        // Resolve the declared family: histogram samples use suffixed
        // names, everything else must match a declaration exactly.
        std::string family = name;
        std::string suffix;
        for (const char *candidate : {"_bucket", "_sum", "_count"}) {
            const std::size_t len = std::string(candidate).size();
            if (name.size() > len &&
                name.compare(name.size() - len, len, candidate) == 0) {
                const std::string base = name.substr(0, name.size() - len);
                const auto it = types.find(base);
                if (it != types.end() && it->second == 'h') {
                    family = base;
                    suffix = candidate;
                    break;
                }
            }
        }
        const auto typeIt = types.find(family);
        if (typeIt == types.end())
            return parseError(lineNo, "sample '" + name +
                                          "' has no # TYPE declaration");
        if (typeIt->second == 'h') {
            if (suffix.empty())
                return parseError(
                    lineNo, "histogram sample without _bucket/_sum/_count");
            Hist &h = hists[family];
            if (suffix == "_bucket") {
                if (!hasLe)
                    return parseError(lineNo, "bucket without le label");
                const double le = leValue == "+Inf"
                                      ? std::numeric_limits<double>::infinity()
                                      : std::strtod(leValue.c_str(), nullptr);
                const std::uint64_t n =
                    static_cast<std::uint64_t>(value);
                if (le < h.lastLe)
                    return parseError(lineNo,
                                      "bucket le values not sorted");
                if (n < h.lastCount)
                    return parseError(lineNo,
                                      "bucket counts not cumulative");
                h.lastLe = le;
                h.lastCount = n;
                if (std::isinf(le)) {
                    h.sawInf = true;
                    h.infCount = n;
                }
            } else if (suffix == "_count") {
                h.sawCount = true;
                h.count = static_cast<std::uint64_t>(value);
            } else {
                h.sawSum = true;
            }
        }
    }

    for (const auto &[family, h] : hists) {
        if (!h.sawInf)
            return Status::corruptInput("prom: histogram '" + family +
                                        "' has no +Inf bucket");
        if (!h.sawCount || !h.sawSum)
            return Status::corruptInput("prom: histogram '" + family +
                                        "' missing _count or _sum");
        if (h.infCount != h.count)
            return Status::corruptInput(
                "prom: histogram '" + family +
                "' +Inf bucket disagrees with _count");
    }
    return Status();
}

} // namespace obs
} // namespace dynex
