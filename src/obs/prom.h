/**
 * @file
 * Prometheus text exposition (version 0.0.4) rendering of the
 * server's STATS rows, plus a strict parser used by tests and the
 * `dynex prom-check` command to prove the rendering stays valid.
 *
 * Scalar rows become gauge families named dynex_<row> with '-'
 * sanitized to '_'. The `lat-<series>-le-<ns>` cumulative rows the
 * histogram exporter appends are folded into proper histogram
 * families `dynex_lat_<series>_ns` with `_bucket{le="..."}` samples
 * (nanosecond upper bounds), a final `le="+Inf"` bucket equal to
 * `_count`, and `_sum`/`_count` samples — exactly the shape a
 * Prometheus scraper expects. The percentile/count/sum-us rows stay
 * as gauges too, so dashboards that want pre-computed p99s don't have
 * to do histogram_quantile.
 */

#ifndef DYNEX_OBS_PROM_H
#define DYNEX_OBS_PROM_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dynex
{
namespace obs
{

/** Ordered (name, value) rows, the server STATS shape. */
using StatsRows = std::vector<std::pair<std::string, std::uint64_t>>;

/** Render @p rows as Prometheus text exposition. */
std::string renderProm(const StatsRows &rows);

/**
 * Strictly validate @p text as Prometheus text exposition: every
 * sample's family has a preceding # TYPE, names match the metric
 * grammar, no family is declared twice, histogram buckets are
 * cumulative-monotone, end with le="+Inf", and agree with _count.
 * @return Ok, or CorruptInput naming the first offending line.
 */
Status promStrictParse(std::string_view text);

} // namespace obs
} // namespace dynex

#endif // DYNEX_OBS_PROM_H
