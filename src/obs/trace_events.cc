#include "obs/trace_events.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/thread_pool.h"

namespace dynex
{
namespace obs
{

namespace
{

std::atomic<Tracer *> activeTracer{nullptr};
std::atomic<std::uint64_t> nextTracerId{1};

/** JSON string escaping for span names (RFC 8259 minimal set). */
std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
poolJobObserver(std::size_t index,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end)
{
    Tracer *const tracer = Tracer::active();
    if (!tracer)
        return;
    const std::uint64_t start_ns = tracer->toNs(start);
    tracer->complete("job#" + std::to_string(index), "pool", start_ns,
                     tracer->toNs(end) - start_ns);
}

} // namespace

Tracer::Tracer()
    : tracerId(nextTracerId.fetch_add(1)),
      epoch(std::chrono::steady_clock::now())
{
}

Tracer *
Tracer::active()
{
    return activeTracer.load(std::memory_order_relaxed);
}

void
Tracer::setActive(Tracer *tracer)
{
    activeTracer.store(tracer, std::memory_order_relaxed);
}

std::uint64_t
Tracer::nowNs() const
{
    return toNs(std::chrono::steady_clock::now());
}

std::uint64_t
Tracer::toNs(std::chrono::steady_clock::time_point when) const
{
    if (when <= epoch)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(when -
                                                             epoch)
            .count());
}

Tracer::ThreadBuffer &
Tracer::bufferForThisThread()
{
    // Same unique-id cache pattern as the metrics shards: uncontended
    // appends after a thread's first span.
    thread_local std::uint64_t cachedOwner = 0;
    thread_local ThreadBuffer *cachedBuffer = nullptr;
    if (cachedOwner != tracerId) {
        std::lock_guard<std::mutex> lock(bufferMutex);
        auto buffer = std::make_unique<ThreadBuffer>();
        buffer->tid = static_cast<std::uint32_t>(buffers.size() + 1);
        buffers.push_back(std::move(buffer));
        cachedBuffer = buffers.back().get();
        cachedOwner = tracerId;
    }
    return *cachedBuffer;
}

void
Tracer::complete(std::string name, const char *category,
                 std::uint64_t start_ns, std::uint64_t dur_ns,
                 std::uint64_t trace_id)
{
    ThreadBuffer &buffer = bufferForThisThread();
    buffer.events.push_back({std::move(name), category, start_ns,
                             dur_ns, buffer.tid, trace_id});
}

std::vector<TraceEvent>
Tracer::sortedEvents() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(bufferMutex);
        std::size_t total = 0;
        for (const auto &buffer : buffers)
            total += buffer->events.size();
        events.reserve(total);
        for (const auto &buffer : buffers)
            events.insert(events.end(), buffer->events.begin(),
                          buffer->events.end());
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.startNs != b.startNs)
                             return a.startNs < b.startNs;
                         return a.durNs > b.durNs;
                     });
    return events;
}

std::string
Tracer::toJson() const
{
    const auto events = sortedEvents();
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char buf[96];
    bool first = true;
    for (const auto &event : events) {
        if (!first)
            out += ',';
        first = false;
        out += "\n{\"name\":\"" + escapeJson(event.name) +
               "\",\"cat\":\"" + escapeJson(event.category) +
               "\",\"ph\":\"X\",\"pid\":1";
        // Microsecond timestamps with ns precision kept as decimals,
        // the unit chrome://tracing expects.
        std::snprintf(buf, sizeof(buf),
                      ",\"tid\":%u,\"ts\":%llu.%03u,\"dur\":%llu.%03u",
                      event.tid,
                      static_cast<unsigned long long>(event.startNs /
                                                      1000),
                      static_cast<unsigned>(event.startNs % 1000),
                      static_cast<unsigned long long>(event.durNs /
                                                      1000),
                      static_cast<unsigned>(event.durNs % 1000));
        out += buf;
        if (event.traceId != 0) {
            // Hex so 64-bit ids survive viewers that parse numbers as
            // doubles; trace-merge keys its alignment on this field.
            std::snprintf(buf, sizeof(buf),
                          ",\"args\":{\"trace\":\"0x%016llx\"}",
                          static_cast<unsigned long long>(
                              event.traceId));
            out += buf;
        }
        out += '}';
    }
    out += "\n]}\n";
    return out;
}

Status
Tracer::writeJson(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return Status::ioError("cannot open " + path + ": " +
                               std::strerror(errno));
    const std::string json = toJson();
    out.write(json.data(),
              static_cast<std::streamsize>(json.size()));
    out.flush();
    if (!out)
        return Status::ioError("cannot write " + path + ": " +
                               std::strerror(errno));
    return Status();
}

void
setPoolJobSpans(bool enable)
{
    ThreadPool::setJobObserver(enable ? &poolJobObserver : nullptr);
}

} // namespace obs
} // namespace dynex
