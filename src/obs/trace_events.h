/**
 * @file
 * A Chrome trace-event tracer for the sweep engine: spans for thread
 * pool jobs, sweep legs, batched replay passes and chunks, and trace
 * loads, written as the JSON array format `chrome://tracing` and
 * Perfetto load directly.
 *
 * Threading model mirrors the metrics registry: each thread appends to
 * its own buffer (registered once under a mutex), so recording a span
 * is an uncontended vector push. The JSON writer runs after the sweep,
 * merging buffers and sorting events by (timestamp, duration) so the
 * file is stable for a given set of recorded intervals.
 *
 * Like the collector, the tracer is consulted through one global
 * pointer: a null check per span site, never per reference, so tracing
 * is free when off.
 */

#ifndef DYNEX_OBS_TRACE_EVENTS_H
#define DYNEX_OBS_TRACE_EVENTS_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace dynex
{
namespace obs
{

/** One complete ("ph":"X") trace event. */
struct TraceEvent
{
    std::string name;
    const char *category = "";
    std::uint64_t startNs = 0; ///< relative to the tracer's epoch
    std::uint64_t durNs = 0;
    std::uint32_t tid = 0;
    /** Request trace id the span belongs to; 0 = untagged. Emitted as
     * args.trace so trace-merge can align client and server files. */
    std::uint64_t traceId = 0;
};

class Tracer
{
  public:
    Tracer();
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The installed tracer, or nullptr: one relaxed atomic load. */
    static Tracer *active();

    /** Install @p tracer (nullptr disables). Caller owns it and must
     * uninstall before destroying it. */
    static void setActive(Tracer *tracer);

    /** Nanoseconds since this tracer was constructed. */
    std::uint64_t nowNs() const;

    /** Convert an absolute steady_clock time to tracer-relative ns
     * (clamped at 0 for pre-epoch times). */
    std::uint64_t
    toNs(std::chrono::steady_clock::time_point when) const;

    /** Record a complete span on the calling thread's buffer. A
     * nonzero @p trace_id tags the span with the request it served. */
    void complete(std::string name, const char *category,
                  std::uint64_t start_ns, std::uint64_t dur_ns,
                  std::uint64_t trace_id = 0);

    /** Merge every thread's events, sorted by (start, -duration) so
     * enclosing spans precede their children. */
    std::vector<TraceEvent> sortedEvents() const;

    /** The Chrome trace JSON ({"traceEvents":[...]}, ts/dur in us). */
    std::string toJson() const;

    /** Write toJson() to @p path. */
    Status writeJson(const std::string &path) const;

  private:
    struct ThreadBuffer
    {
        std::vector<TraceEvent> events;
        std::uint32_t tid = 0;
    };

    ThreadBuffer &bufferForThisThread();

    const std::uint64_t tracerId;
    std::chrono::steady_clock::time_point epoch;
    mutable std::mutex bufferMutex;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

/**
 * RAII complete-span recorder. Constructing one when no tracer is
 * installed costs the name-string construction at the call site; hot
 * paths should guard with `if (Tracer::active())` before building
 * dynamic labels.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *category, std::string name,
               std::uint64_t trace_id = 0)
        : tracer(Tracer::active()), cat(category), traceId(trace_id)
    {
        if (tracer) {
            label = std::move(name);
            startNs = tracer->nowNs();
        }
    }

    ~ScopedSpan()
    {
        if (tracer)
            tracer->complete(std::move(label), cat, startNs,
                             tracer->nowNs() - startNs, traceId);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Tracer *tracer;
    const char *cat;
    std::uint64_t traceId;
    std::string label;
    std::uint64_t startNs = 0;
};

/**
 * Install (or remove, @p enable == false) the ThreadPool job observer
 * that emits one "pool" span per parallelFor index into the active
 * tracer. Kept separate from Tracer::setActive so library users who
 * only want engine-level spans do not pay the per-index clock reads.
 */
void setPoolJobSpans(bool enable);

} // namespace obs
} // namespace dynex

#endif // DYNEX_OBS_TRACE_EVENTS_H
