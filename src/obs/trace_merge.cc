#include "obs/trace_merge.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace dynex
{
namespace obs
{

namespace
{

/**
 * A minimal recursive-descent JSON reader, just enough for trace
 * files: it walks the document once and hands every object inside
 * "traceEvents" to a callback as flat key/value lookups. Tolerant of
 * unknown fields, strict about structure (a malformed document is
 * CorruptInput, never a crash).
 */
class JsonCursor
{
  public:
    explicit JsonCursor(std::string_view text) : data(text) {}

    bool failedParse() const { return failed; }
    std::string error() const { return errorText; }

    void skipWs()
    {
        while (at < data.size() &&
               std::isspace(static_cast<unsigned char>(data[at])))
            ++at;
    }

    bool eat(char c)
    {
        skipWs();
        if (at < data.size() && data[at] == c) {
            ++at;
            return true;
        }
        return false;
    }

    char peek()
    {
        skipWs();
        return at < data.size() ? data[at] : '\0';
    }

    void fail(const std::string &what)
    {
        if (!failed) {
            failed = true;
            errorText = what + " at byte " + std::to_string(at);
        }
        at = data.size();
    }

    std::string parseString()
    {
        std::string out;
        if (!eat('"')) {
            fail("expected string");
            return out;
        }
        while (at < data.size() && data[at] != '"') {
            char c = data[at++];
            if (c == '\\' && at < data.size()) {
                const char esc = data[at++];
                switch (esc) {
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case 'u':
                    // Keep the raw escape; trace names never need it.
                    out += "\\u";
                    continue;
                  default: c = esc; break;
                }
            }
            out += c;
        }
        if (!eat('"'))
            fail("unterminated string");
        return out;
    }

    double parseNumber()
    {
        skipWs();
        const char *start = data.data() + at;
        char *end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start) {
            fail("expected number");
            return 0.0;
        }
        at += static_cast<std::size_t>(end - start);
        return value;
    }

    /** Skip any JSON value. */
    void skipValue()
    {
        switch (peek()) {
          case '"':
            parseString();
            return;
          case '{': {
            eat('{');
            if (eat('}'))
                return;
            do {
                parseString();
                if (!eat(':')) {
                    fail("expected ':'");
                    return;
                }
                skipValue();
            } while (eat(','));
            if (!eat('}'))
                fail("unterminated object");
            return;
          }
          case '[': {
            eat('[');
            if (eat(']'))
                return;
            do
                skipValue();
            while (eat(','));
            if (!eat(']'))
                fail("unterminated array");
            return;
          }
          case 't':
          case 'f':
          case 'n': {
            while (at < data.size() &&
                   std::isalpha(static_cast<unsigned char>(data[at])))
                ++at;
            return;
          }
          default:
            parseNumber();
        }
    }

    std::string_view data;
    std::size_t at = 0;

  private:
    bool failed = false;
    std::string errorText;
};

std::uint64_t
parseHexId(const std::string &text)
{
    if (text.compare(0, 2, "0x") != 0)
        return 0;
    return std::strtoull(text.c_str() + 2, nullptr, 16);
}

/** Parse one traceEvents object into @p event; @return false for
 * non-"X" (metadata) events, which the merger skips. */
bool
parseEventObject(JsonCursor &cur, MergeEvent &event)
{
    bool isComplete = false;
    if (!cur.eat('{')) {
        cur.fail("expected event object");
        return false;
    }
    if (cur.eat('}'))
        return false;
    do {
        const std::string key = cur.parseString();
        if (!cur.eat(':')) {
            cur.fail("expected ':'");
            return false;
        }
        if (key == "name") {
            event.name = cur.parseString();
        } else if (key == "cat") {
            event.category = cur.parseString();
        } else if (key == "ph") {
            isComplete = cur.parseString() == "X";
        } else if (key == "tid") {
            event.tid = static_cast<std::uint32_t>(cur.parseNumber());
        } else if (key == "ts") {
            event.tsUs = cur.parseNumber();
        } else if (key == "dur") {
            event.durUs = cur.parseNumber();
        } else if (key == "args") {
            // Look for args.trace, skip everything else.
            if (!cur.eat('{')) {
                cur.fail("expected args object");
                return false;
            }
            if (!cur.eat('}')) {
                do {
                    const std::string argKey = cur.parseString();
                    if (!cur.eat(':')) {
                        cur.fail("expected ':'");
                        return false;
                    }
                    if (argKey == "trace")
                        event.traceId = parseHexId(cur.parseString());
                    else
                        cur.skipValue();
                } while (cur.eat(','));
                if (!cur.eat('}')) {
                    cur.fail("unterminated args");
                    return false;
                }
            }
        } else {
            cur.skipValue();
        }
    } while (cur.eat(','));
    if (!cur.eat('}')) {
        cur.fail("unterminated event");
        return false;
    }
    return isComplete && !cur.failedParse();
}

std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Per-trace-id midpoint (us) of all spans carrying the id. */
std::map<std::uint64_t, double>
idMidpoints(const std::vector<MergeEvent> &events)
{
    struct Extent
    {
        double lo = 0.0, hi = 0.0;
        bool any = false;
    };
    std::map<std::uint64_t, Extent> extents;
    for (const MergeEvent &event : events) {
        if (event.traceId == 0)
            continue;
        Extent &e = extents[event.traceId];
        const double lo = event.tsUs;
        const double hi = event.tsUs + event.durUs;
        if (!e.any || lo < e.lo)
            e.lo = lo;
        if (!e.any || hi > e.hi)
            e.hi = hi;
        e.any = true;
    }
    std::map<std::uint64_t, double> mids;
    for (const auto &[id, e] : extents)
        mids[id] = (e.lo + e.hi) / 2.0;
    return mids;
}

double
minTs(const std::vector<MergeEvent> &events)
{
    double lo = 0.0;
    bool any = false;
    for (const MergeEvent &event : events) {
        if (!any || event.tsUs < lo)
            lo = event.tsUs;
        any = true;
    }
    return lo;
}

} // namespace

Result<std::vector<MergeEvent>>
parseChromeTrace(std::string_view json)
{
    JsonCursor cur(json);
    std::vector<MergeEvent> events;
    if (!cur.eat('{'))
        return Status::corruptInput("trace: expected top-level object");
    if (!cur.eat('}')) {
        do {
            const std::string key = cur.parseString();
            if (!cur.eat(':'))
                return Status::corruptInput("trace: expected ':'");
            if (key == "traceEvents") {
                if (!cur.eat('['))
                    return Status::corruptInput(
                        "trace: traceEvents is not an array");
                if (!cur.eat(']')) {
                    do {
                        MergeEvent event;
                        if (parseEventObject(cur, event))
                            events.push_back(std::move(event));
                    } while (cur.eat(','));
                    if (!cur.eat(']'))
                        return Status::corruptInput(
                            "trace: unterminated traceEvents");
                }
            } else {
                cur.skipValue();
            }
        } while (cur.eat(','));
        if (!cur.eat('}'))
            return Status::corruptInput(
                "trace: unterminated top-level object");
    }
    if (cur.failedParse())
        return Status::corruptInput("trace: " + cur.error());
    return events;
}

std::string
mergeChromeTraces(const std::vector<MergeInput> &inputs)
{
    // Clock alignment: input 0 is the reference timeline. Later
    // inputs shift by the mean midpoint offset over trace ids shared
    // with the reference; with none shared, by earliest-timestamp
    // alignment (the merged view is then ordered but not causal).
    std::vector<double> offsets(inputs.size(), 0.0);
    const std::map<std::uint64_t, double> refMids =
        inputs.empty() ? std::map<std::uint64_t, double>{}
                       : idMidpoints(inputs[0].events);
    for (std::size_t i = 1; i < inputs.size(); ++i) {
        const std::map<std::uint64_t, double> mids =
            idMidpoints(inputs[i].events);
        double sum = 0.0;
        std::size_t shared = 0;
        for (const auto &[id, mid] : mids) {
            const auto ref = refMids.find(id);
            if (ref == refMids.end())
                continue;
            sum += ref->second - mid;
            ++shared;
        }
        offsets[i] = shared > 0
                         ? sum / static_cast<double>(shared)
                         : minTs(inputs[0].events) -
                               minTs(inputs[i].events);
    }

    struct Placed
    {
        const MergeEvent *event;
        int pid;
        double tsUs;
    };
    std::vector<Placed> placed;
    double lowest = 0.0;
    bool any = false;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        for (const MergeEvent &event : inputs[i].events) {
            const double ts = event.tsUs + offsets[i];
            placed.push_back({&event, static_cast<int>(i + 1), ts});
            if (!any || ts < lowest)
                lowest = ts;
            any = true;
        }
    }
    // Normalize so the merged timeline starts at ts >= 0 (negative
    // timestamps confuse some viewers).
    for (Placed &p : placed)
        p.tsUs -= lowest;

    std::stable_sort(placed.begin(), placed.end(),
                     [](const Placed &a, const Placed &b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         return a.event->durUs > b.event->durUs;
                     });

    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (!first)
            out += ',';
        first = false;
        out += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
               std::to_string(i + 1) + ",\"args\":{\"name\":\"" +
               escapeJson(inputs[i].label) + "\"}}";
    }
    char buf[64];
    for (const Placed &p : placed) {
        if (!first)
            out += ',';
        first = false;
        out += "\n{\"name\":\"" + escapeJson(p.event->name) +
               "\",\"cat\":\"" + escapeJson(p.event->category) +
               "\",\"ph\":\"X\",\"pid\":" + std::to_string(p.pid);
        std::snprintf(buf, sizeof(buf), ",\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                      p.event->tid, p.tsUs, p.event->durUs);
        out += buf;
        if (p.event->traceId != 0) {
            std::snprintf(buf, sizeof(buf),
                          ",\"args\":{\"trace\":\"0x%016llx\"}",
                          static_cast<unsigned long long>(
                              p.event->traceId));
            out += buf;
        }
        out += '}';
    }
    out += "\n]}\n";
    return out;
}

} // namespace obs
} // namespace dynex
