#include "obs/log.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/progress.h"

namespace dynex
{
namespace obs
{

namespace
{

std::atomic<Logger *> activeLogger{nullptr};

/** Wall-clock milliseconds since the Unix epoch, for log timestamps.
 * (The simulation itself never reads wall time; logs are for humans
 * correlating with the outside world.) */
std::uint64_t
wallMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

void
appendJsonString(std::string &out, std::string_view text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "unknown";
}

bool
parseLogLevel(std::string_view name, LogLevel &level)
{
    if (name == "debug")
        level = LogLevel::Debug;
    else if (name == "info")
        level = LogLevel::Info;
    else if (name == "warn")
        level = LogLevel::Warn;
    else if (name == "error")
        level = LogLevel::Error;
    else
        return false;
    return true;
}

std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

// ---------------------------------------------------------------------
// LogLine

LogLine::LogLine(Logger *owner, LogLevel level, std::string_view event,
                 std::uint64_t dropped_since_last)
    : logger(owner)
{
    if (!logger)
        return;
    body = "{\"ts-ms\":" + std::to_string(wallMs());
    body += ",\"level\":\"";
    body += logLevelName(level);
    body += "\",\"event\":";
    appendJsonString(body, event);
    if (dropped_since_last != 0)
        body += ",\"dropped\":" + std::to_string(dropped_since_last);
}

LogLine::LogLine(LogLine &&other) noexcept
    : logger(other.logger), body(std::move(other.body))
{
    other.logger = nullptr;
}

LogLine::~LogLine()
{
    if (!logger)
        return;
    body += '}';
    logger->emit(body);
}

LogLine &
LogLine::str(std::string_view key, std::string_view value)
{
    if (!logger)
        return *this;
    body += ',';
    appendJsonString(body, key);
    body += ':';
    appendJsonString(body, value);
    return *this;
}

LogLine &
LogLine::u64(std::string_view key, std::uint64_t value)
{
    if (!logger)
        return *this;
    body += ',';
    appendJsonString(body, key);
    body += ':';
    body += std::to_string(value);
    return *this;
}

LogLine &
LogLine::i64(std::string_view key, std::int64_t value)
{
    if (!logger)
        return *this;
    body += ',';
    appendJsonString(body, key);
    body += ':';
    body += std::to_string(value);
    return *this;
}

LogLine &
LogLine::hex(std::string_view key, std::uint64_t value)
{
    if (!logger)
        return *this;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(value));
    return str(key, buf);
}

LogLine &
LogLine::boolean(std::string_view key, bool value)
{
    if (!logger)
        return *this;
    body += ',';
    appendJsonString(body, key);
    body += value ? ":true" : ":false";
    return *this;
}

// ---------------------------------------------------------------------
// Logger

Logger::Logger(Options options)
    : opts(options),
      tokens(static_cast<double>(options.burst)),
      lastRefillNs(monotonicNs())
{
}

Logger *
Logger::active()
{
    return activeLogger.load(std::memory_order_relaxed);
}

void
Logger::setActive(Logger *logger)
{
    activeLogger.store(logger, std::memory_order_relaxed);
}

bool
Logger::admit()
{
    if (opts.ratePerSec == 0)
        return true;
    std::lock_guard<std::mutex> lock(bucketMutex);
    const std::uint64_t now = monotonicNs();
    const double elapsedSec =
        static_cast<double>(now - lastRefillNs) * 1e-9;
    lastRefillNs = now;
    tokens += elapsedSec * static_cast<double>(opts.ratePerSec);
    const double cap = static_cast<double>(opts.burst);
    if (tokens > cap)
        tokens = cap;
    if (tokens < 1.0)
        return false;
    tokens -= 1.0;
    return true;
}

LogLine
Logger::line(LogLevel level, std::string_view event)
{
    if (level < opts.minLevel)
        return LogLine(nullptr, level, event, 0);
    // Warn/error are exempt from the bucket: when something is wrong
    // the evidence must not be the thing that gets shed.
    if (level < LogLevel::Warn && !admit()) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        pendingDropped.fetch_add(1, std::memory_order_relaxed);
        return LogLine(nullptr, level, event, 0);
    }
    return LogLine(this, level, event,
                   pendingDropped.exchange(0,
                                           std::memory_order_relaxed));
}

void
Logger::emit(const std::string &body)
{
    ProgressBar *bar = ProgressBar::active();
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        // A live progress bar owns the current terminal line: clear it
        // so the log line starts at column 0, then let the bar repaint
        // on its own line afterwards.
        if (bar && opts.sink == stderr)
            std::fputs("\r\x1b[K", opts.sink);
        std::fputs(body.c_str(), opts.sink);
        std::fputc('\n', opts.sink);
        std::fflush(opts.sink);
    }
    if (bar && opts.sink == stderr)
        bar->redraw();
}

} // namespace obs
} // namespace dynex
