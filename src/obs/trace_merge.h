/**
 * @file
 * Merging client- and server-side Chrome trace files into one
 * timeline. Each side records spans against its own steady_clock
 * epoch, so the files cannot simply be concatenated — the merger
 * aligns clocks using the request trace ids both sides stamped on
 * their spans (args.trace, written by Tracer::toJson): for every
 * trace id present in both files it computes the midpoint of that
 * id's spans on each side and offsets the second file so the
 * midpoints coincide, averaging across all shared ids. Files with no
 * shared ids fall back to aligning their earliest timestamps.
 *
 * Every input file becomes one "process" in the output (pid 1, 2,
 * ...) with a process_name metadata event carrying its label, so the
 * merged file opens in chrome://tracing or Perfetto as side-by-side
 * client/server tracks with request spans lined up.
 */

#ifndef DYNEX_OBS_TRACE_MERGE_H
#define DYNEX_OBS_TRACE_MERGE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dynex
{
namespace obs
{

/** One parsed trace event, timestamps in microseconds. */
struct MergeEvent
{
    std::string name;
    std::string category;
    std::uint32_t tid = 0;
    double tsUs = 0.0;
    double durUs = 0.0;
    std::uint64_t traceId = 0; ///< parsed from args.trace; 0 = none
};

/** One input file: a display label plus its events. */
struct MergeInput
{
    std::string label; ///< e.g. "client" / "server" (process name)
    std::vector<MergeEvent> events;
};

/**
 * Parse the "ph":"X" events out of a Chrome trace JSON document (the
 * shape Tracer::toJson writes; metadata events are skipped).
 * Malformed JSON yields CorruptInput.
 */
Result<std::vector<MergeEvent>> parseChromeTrace(std::string_view json);

/**
 * Merge @p inputs into one Chrome trace JSON document. Input order is
 * preserved as pid order and the first input is the clock reference.
 */
std::string mergeChromeTraces(const std::vector<MergeInput> &inputs);

} // namespace obs
} // namespace dynex

#endif // DYNEX_OBS_TRACE_MERGE_H
