#include "obs/histogram.h"

#include <atomic>
#include <bit>

namespace dynex
{
namespace obs
{

namespace
{

std::atomic<HistogramSet *> activeSet{nullptr};

std::atomic<std::uint64_t> nextSetId{1};

} // namespace

const char *
latencyName(Latency series)
{
    switch (series) {
      case Latency::E2ePing: return "e2e-ping";
      case Latency::E2eList: return "e2e-list";
      case Latency::E2eReplay: return "e2e-replay";
      case Latency::E2eSweep: return "e2e-sweep";
      case Latency::E2eStats: return "e2e-stats";
      case Latency::E2eHello: return "e2e-hello";
      case Latency::QueueWait: return "queue-wait";
      case Latency::Admission: return "admission";
      case Latency::StoreLoad: return "store-load";
      case Latency::Replay: return "replay";
      case Latency::Serialize: return "serialize";
    }
    return "unknown";
}

std::size_t
histogramBucket(std::uint64_t ns)
{
    return ns <= 1 ? 0
                   : static_cast<std::size_t>(63 - std::countl_zero(ns));
}

std::uint64_t
histogramBucketUpperNs(std::size_t index)
{
    if (index >= kHistogramBuckets - 1)
        return ~0ull;
    return (2ull << index) - 1;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        buckets[i] += other.buckets[i];
    count += other.count;
    sumNs += other.sumNs;
    maxNs = maxNs < other.maxNs ? other.maxNs : maxNs;
}

std::uint64_t
HistogramSnapshot::percentileNs(double q) const
{
    if (count == 0)
        return 0;
    // Rank of the q-th sample, 1-based, clamped into [1, count].
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            const std::uint64_t upper = histogramBucketUpperNs(i);
            return upper < maxNs ? upper : maxNs;
        }
    }
    return maxNs;
}

HistogramSet::HistogramSet() : setId(nextSetId.fetch_add(1)) {}

HistogramSet::Shard &
HistogramSet::shardForThisThread()
{
    thread_local std::uint64_t cachedOwner = 0;
    thread_local Shard *cachedShard = nullptr;
    if (cachedOwner != setId) {
        std::lock_guard<std::mutex> lock(shardMutex);
        shards.push_back(std::make_unique<Shard>());
        cachedShard = shards.back().get();
        cachedOwner = setId;
    }
    return *cachedShard;
}

void
HistogramSet::record(Latency series, std::uint64_t ns)
{
    Shard::Series &s =
        shardForThisThread().series[static_cast<std::size_t>(series)];
    ++s.buckets[histogramBucket(ns)];
    ++s.count;
    s.sumNs += ns;
    if (ns > s.maxNs)
        s.maxNs = ns;
}

HistogramSnapshot
HistogramSet::snapshot(Latency series) const
{
    const std::size_t index = static_cast<std::size_t>(series);
    HistogramSnapshot snap;
    std::lock_guard<std::mutex> lock(shardMutex);
    for (const auto &shard : shards) {
        const Shard::Series &s = shard->series[index];
        for (std::size_t i = 0; i < kHistogramBuckets; ++i)
            snap.buckets[i] += s.buckets[i];
        snap.count += s.count;
        snap.sumNs += s.sumNs;
        if (s.maxNs > snap.maxNs)
            snap.maxNs = s.maxNs;
    }
    return snap;
}

void
appendSnapshotRows(
    const std::string &name, const HistogramSnapshot &snap,
    std::vector<std::pair<std::string, std::uint64_t>> &rows)
{
    const std::string prefix = "lat-" + name;
    rows.emplace_back(prefix + "-count", snap.count);
    rows.emplace_back(prefix + "-sum-us", snap.sumNs / 1000);
    rows.emplace_back(prefix + "-p50-us", snap.percentileNs(0.50) / 1000);
    rows.emplace_back(prefix + "-p95-us", snap.percentileNs(0.95) / 1000);
    rows.emplace_back(prefix + "-p99-us", snap.percentileNs(0.99) / 1000);
    rows.emplace_back(prefix + "-max-us", snap.maxNs / 1000);
    // Cumulative bucket rows up to the highest non-empty bucket: the
    // Prometheus renderer turns these into classic `le` buckets.
    std::size_t top = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        if (snap.buckets[i] != 0)
            top = i;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= top; ++i) {
        cumulative += snap.buckets[i];
        rows.emplace_back(prefix + "-le-" +
                              std::to_string(histogramBucketUpperNs(i)),
                          cumulative);
    }
}

void
HistogramSet::appendStatsRows(
    std::vector<std::pair<std::string, std::uint64_t>> &rows) const
{
    for (std::size_t i = 0; i < kLatencyCount; ++i) {
        const Latency series = static_cast<Latency>(i);
        const HistogramSnapshot snap = snapshot(series);
        if (snap.count == 0)
            continue;
        appendSnapshotRows(latencyName(series), snap, rows);
    }
}

HistogramSet *
activeHistograms()
{
    return activeSet.load(std::memory_order_relaxed);
}

void
setActiveHistograms(HistogramSet *set)
{
    activeSet.store(set, std::memory_order_relaxed);
}

} // namespace obs
} // namespace dynex
