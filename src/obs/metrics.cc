#include "obs/metrics.h"

#include <chrono>

#include "util/logging.h"

namespace dynex
{
namespace obs
{

namespace
{

std::atomic<MetricsCollector *> activeCollector{nullptr};

/** Slot-map key: legs are unique per (bench, size). */
std::string
legKey(const std::string &bench, std::uint64_t size_bytes)
{
    return bench + '@' + std::to_string(size_bytes);
}

std::atomic<std::uint64_t> nextCollectorId{1};

} // namespace

MetricsCollector::MetricsCollector()
    : collectorId(nextCollectorId.fetch_add(1))
{
}

std::uint64_t
monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const char *
counterName(Counter counter)
{
    switch (counter) {
      case Counter::TraceLoadNs:
        return "trace-load-ns";
      case Counter::TraceLoadRefs:
        return "trace-load-refs";
      case Counter::IndexBuildNs:
        return "index-build-ns";
      case Counter::IndexBuilds:
        return "index-builds";
      case Counter::ReplayChunks:
        return "replay-chunks";
      case Counter::SrvRequests:
        return "srv-requests";
      case Counter::SrvErrors:
        return "srv-errors";
      case Counter::SrvBusy:
        return "srv-busy";
      case Counter::SrvBytesIn:
        return "srv-bytes-in";
      case Counter::SrvBytesOut:
        return "srv-bytes-out";
      case Counter::StoreHits:
        return "store-hits";
      case Counter::StoreMisses:
        return "store-misses";
      case Counter::StoreEvictions:
        return "store-evictions";
      case Counter::StoreBytesSaved:
        return "store-bytes-saved";
      case Counter::StoreEncodedHits:
        return "store-encoded-hits";
      case Counter::SrvAdmitted:
        return "srv-admitted";
      case Counter::SrvShed:
        return "srv-shed";
      case Counter::SrvRetryAfterMs:
        return "srv-retry-after-ms";
      case Counter::ChaosBusy:
        return "chaos-busy";
      case Counter::ChaosTrunc:
        return "chaos-truncations";
      case Counter::ChaosDelay:
        return "chaos-delays";
      case Counter::ChaosLoadFail:
        return "chaos-load-failures";
    }
    return "unknown";
}

std::size_t
MetricsCollector::addLeg(const std::string &bench,
                         std::uint64_t size_bytes)
{
    const std::size_t index = slots.size();
    auto slot = std::make_unique<LegMetrics>();
    slot->bench = bench;
    slot->sizeBytes = size_bytes;
    slots.push_back(std::move(slot));
    slotIndex.emplace(legKey(bench, size_bytes), index);
    return index;
}

LegMetrics *
MetricsCollector::leg(const std::string &bench, std::uint64_t size_bytes)
{
    const auto it = slotIndex.find(legKey(bench, size_bytes));
    return it == slotIndex.end() ? nullptr : slots[it->second].get();
}

MetricsCollector::Shard &
MetricsCollector::shardForThisThread()
{
    // One cached (collector-id, shard) pair per thread: pool threads
    // outlive sweeps, so after the first touch every add() is a plain
    // array store with no locking. Keying on the unique id (not the
    // address) keeps a stale cache from aliasing a new collector that
    // reuses a freed one's storage.
    thread_local std::uint64_t cachedOwner = 0;
    thread_local Shard *cachedShard = nullptr;
    if (cachedOwner != collectorId) {
        std::lock_guard<std::mutex> lock(shardMutex);
        shards.push_back(std::make_unique<Shard>());
        cachedShard = shards.back().get();
        cachedOwner = collectorId;
    }
    return *cachedShard;
}

void
MetricsCollector::add(Counter counter, std::uint64_t delta)
{
    shardForThisThread().values[static_cast<std::size_t>(counter)] +=
        delta;
}

std::uint64_t
MetricsCollector::total(Counter counter) const
{
    std::lock_guard<std::mutex> lock(shardMutex);
    std::uint64_t sum = 0;
    for (const auto &shard : shards)
        sum += shard->values[static_cast<std::size_t>(counter)];
    return sum;
}

MetricsCollector *
activeMetrics()
{
    return activeCollector.load(std::memory_order_relaxed);
}

void
setActiveMetrics(MetricsCollector *collector)
{
    activeCollector.store(collector, std::memory_order_relaxed);
}

} // namespace obs
} // namespace dynex
