/**
 * @file
 * Deterministic log-bucketed latency histograms for the serving path.
 *
 * A LatencyHistogram is 64 fixed log2 buckets over nanoseconds: bucket
 * i counts samples in [2^i, 2^(i+1)) (a value of 0 lands in bucket 0).
 * Recording is an increment into a per-thread shard — no allocation,
 * no locking after a thread's first touch — and aggregation is an
 * integer sum of bucket counts, which is associative and therefore
 * independent of recording order and worker count. Percentiles are a
 * pure function of the merged bucket counts, so for a fixed sample
 * set the exported p50/p95/p99/max rows are bit-identical whether the
 * server ran 1, 2 or 8 workers.
 *
 * HistogramSet bundles one histogram per Latency series (end-to-end
 * latency per request type, queue wait, admission decision, store
 * load, replay, serialize) behind the same active-pointer install
 * pattern as MetricsCollector, and exports snapshots as the `lat-*`
 * STATS rows the CLI dashboard and Prometheus exposition render.
 */

#ifndef DYNEX_OBS_HISTOGRAM_H
#define DYNEX_OBS_HISTOGRAM_H

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dynex
{
namespace obs
{

/** The latency series a server records. */
enum class Latency : std::uint8_t
{
    E2ePing,    ///< end-to-end handling of a ping request
    E2eList,    ///< end-to-end handling of a list request
    E2eReplay,  ///< end-to-end handling of a replay request
    E2eSweep,   ///< end-to-end handling of a sweep request
    E2eStats,   ///< end-to-end handling of a stats request
    E2eHello,   ///< end-to-end handling of a hello request
    QueueWait,  ///< accept-to-worker-pickup wait in the accept queue
    Admission,  ///< admission-control decision time
    StoreLoad,  ///< TraceStore acquire (hit, wait or load)
    Replay,     ///< the simulation work itself
    Serialize,  ///< response body encode time
};

inline constexpr std::size_t kLatencyCount = 11;

/** Number of log2 buckets; covers the full u64 nanosecond range. */
inline constexpr std::size_t kHistogramBuckets = 64;

/** Stable lowercase name ("e2e-ping", "queue-wait", ...). */
const char *latencyName(Latency series);

/**
 * The merged, immutable view of one histogram. Percentile queries and
 * row export all run on snapshots, never on live shards.
 */
struct HistogramSnapshot
{
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sumNs = 0;
    std::uint64_t maxNs = 0;

    /** Fold another snapshot in (order-independent integer sums). */
    void merge(const HistogramSnapshot &other);

    /**
     * The smallest bucket upper bound whose cumulative count reaches
     * @p q (in [0,1]) of the total, clamped to maxNs so a one-sample
     * histogram reports the sample, not its bucket ceiling. 0 when
     * empty.
     */
    std::uint64_t percentileNs(double q) const;
};

/** The log2 bucket for @p ns: floor(log2(ns)), 0 for ns <= 1. */
std::size_t histogramBucket(std::uint64_t ns);

/** Inclusive upper bound of bucket @p index (2^(i+1) - 1, saturated). */
std::uint64_t histogramBucketUpperNs(std::size_t index);

/**
 * One process's set of latency histograms: per-thread shards, each
 * holding all kLatencyCount series, registered on first touch exactly
 * like MetricsCollector's counter shards.
 */
class HistogramSet
{
  public:
    HistogramSet();
    HistogramSet(const HistogramSet &) = delete;
    HistogramSet &operator=(const HistogramSet &) = delete;

    /** Record @p ns into @p series on this thread's shard. */
    void record(Latency series, std::uint64_t ns);

    /** Merge all shards of @p series into one snapshot. */
    HistogramSnapshot snapshot(Latency series) const;

    /**
     * Append the `lat-*` STATS rows for every non-empty series, in
     * Latency declaration order: count, sum-us, p50/p95/p99/max-us,
     * then cumulative `le` bucket rows up to the highest non-empty
     * bucket. Empty series emit nothing, so a fresh server's stats
     * stay compact.
     */
    void appendStatsRows(
        std::vector<std::pair<std::string, std::uint64_t>> &rows) const;

  private:
    struct Shard
    {
        struct Series
        {
            std::array<std::uint64_t, kHistogramBuckets> buckets{};
            std::uint64_t count = 0;
            std::uint64_t sumNs = 0;
            std::uint64_t maxNs = 0;
        };
        std::array<Series, kLatencyCount> series{};
    };

    Shard &shardForThisThread();

    /** Process-unique id keying the per-thread shard cache (see
     * MetricsCollector::shardForThisThread for the aliasing hazard). */
    const std::uint64_t setId;

    mutable std::mutex shardMutex;
    std::vector<std::unique_ptr<Shard>> shards;
};

/** The installed set, or nullptr: one relaxed atomic load. */
HistogramSet *activeHistograms();

/** Install @p set (nullptr disables). Caller owns the lifetime. */
void setActiveHistograms(HistogramSet *set);

/**
 * Append one snapshot's rows under @p name using the export naming
 * convention (`lat-<name>-count`, `-sum-us`, `-p50-us`, `-p95-us`,
 * `-p99-us`, `-max-us`, then `-le-<ns>` cumulative buckets). Shared by
 * HistogramSet::appendStatsRows and tests.
 */
void appendSnapshotRows(
    const std::string &name, const HistogramSnapshot &snap,
    std::vector<std::pair<std::string, std::uint64_t>> &rows);

} // namespace obs
} // namespace dynex

#endif // DYNEX_OBS_HISTOGRAM_H
