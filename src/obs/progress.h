/**
 * @file
 * A TTY progress bar for long suite sweeps: worker threads report
 * completed work units (references replayed, legs finished) through an
 * atomic counter, and redraws are throttled so terminal I/O never
 * backpressures the sweep. Rendering goes to stderr, keeping stdout's
 * result tables byte-identical with the bar on or off.
 */

#ifndef DYNEX_OBS_PROGRESS_H
#define DYNEX_OBS_PROGRESS_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace dynex
{
namespace obs
{

class ProgressBar
{
  public:
    /**
     * @param label prefix drawn before the bar (e.g. the trace name).
     * @param total work units at 100%; 0 renders a counter only.
     * @param out sink, stderr by default.
     */
    explicit ProgressBar(std::string label, std::uint64_t total,
                         std::FILE *out = stderr);

    /** Draws the final state (with a newline) if finish() never ran. */
    ~ProgressBar();

    ProgressBar(const ProgressBar &) = delete;
    ProgressBar &operator=(const ProgressBar &) = delete;

    /** The installed bar, or nullptr: one relaxed atomic load. */
    static ProgressBar *active();

    /** Install @p bar (nullptr disables). Caller owns it. */
    static void setActive(ProgressBar *bar);

    /**
     * Report @p delta completed units. Thread-safe; only the caller
     * that observes a permille change (and wins the non-blocking draw
     * lock) touches the terminal.
     */
    void add(std::uint64_t delta);

    /** Draw the final state and terminate the line. Idempotent. */
    void finish();

    /**
     * Repaint the current state if the draw lock is free (used by the
     * structured logger after it prints a line over the bar). Never
     * blocks; a lost race just means the next add() repaints.
     */
    void redraw();

    std::uint64_t done() const { return doneUnits.load(); }

  private:
    void draw(std::uint64_t done_units, bool final_draw);

    std::string barLabel;
    std::uint64_t totalUnits;
    std::FILE *sink;
    std::atomic<std::uint64_t> doneUnits{0};
    std::atomic<std::uint64_t> lastDrawnPermille{~std::uint64_t{0}};
    std::atomic<bool> finished{false};
    std::mutex drawMutex;
};

/** RAII installer for ProgressBar::setActive. */
class ScopedProgress
{
  public:
    explicit ScopedProgress(ProgressBar *bar)
    {
        ProgressBar::setActive(bar);
    }
    ~ScopedProgress() { ProgressBar::setActive(nullptr); }
    ScopedProgress(const ScopedProgress &) = delete;
    ScopedProgress &operator=(const ScopedProgress &) = delete;
};

} // namespace obs
} // namespace dynex

#endif // DYNEX_OBS_PROGRESS_H
