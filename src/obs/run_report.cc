#include "obs/run_report.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "cache/exclusion_fsm.h"
#include "util/csv.h"
#include "util/stats.h"

namespace dynex
{
namespace obs
{

namespace
{

/** JSON string escaping (names come from traces and status text). */
std::string
jsonString(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

/** Shortest round-trippable decimal: the same double always renders
 * the same bytes, which the byte-stability guarantee rests on. */
std::string
jsonDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
jsonU64(std::uint64_t value)
{
    return std::to_string(value);
}

void
appendStats(std::string &out, const char *key, const CacheStats &stats)
{
    out += '"';
    out += key;
    out += "\":{\"accesses\":" + jsonU64(stats.accesses) +
           ",\"hits\":" + jsonU64(stats.hits) +
           ",\"misses\":" + jsonU64(stats.misses) +
           ",\"coldMisses\":" + jsonU64(stats.coldMisses) +
           ",\"fills\":" + jsonU64(stats.fills) +
           ",\"bypasses\":" + jsonU64(stats.bypasses) +
           ",\"evictions\":" + jsonU64(stats.evictions) +
           ",\"missPct\":" + jsonDouble(stats.missPercent()) + "}";
}

const std::array<FsmEvent, 5> kAllFsmEvents = {
    FsmEvent::ColdFill, FsmEvent::Hit, FsmEvent::ReplaceUnsticky,
    FsmEvent::ReplaceHitLast, FsmEvent::Bypass};

const std::array<Counter, kCounterCount> kAllCounters = {
    Counter::TraceLoadNs,  Counter::TraceLoadRefs,
    Counter::IndexBuildNs, Counter::IndexBuilds,
    Counter::ReplayChunks, Counter::SrvRequests,
    Counter::SrvErrors,    Counter::SrvBusy,
    Counter::SrvBytesIn,   Counter::SrvBytesOut,
    Counter::StoreHits,    Counter::StoreMisses,
    Counter::StoreEvictions, Counter::StoreBytesSaved,
    Counter::StoreEncodedHits, Counter::SrvAdmitted,
    Counter::SrvShed,      Counter::SrvRetryAfterMs,
    Counter::ChaosBusy,    Counter::ChaosTrunc,
    Counter::ChaosDelay,   Counter::ChaosLoadFail};

/** Wall-clock counters are excluded at Deterministic detail. */
bool
isTimingCounter(Counter counter)
{
    return counter == Counter::TraceLoadNs ||
           counter == Counter::IndexBuildNs;
}

} // namespace

RunReport
RunReport::build(RunInfo info, const MetricsCollector &collector,
                 std::vector<ReportFailure> failures)
{
    RunReport report;
    report.run = std::move(info);
    report.legs.reserve(collector.legCount());
    for (std::size_t i = 0; i < collector.legCount(); ++i)
        report.legs.push_back(collector.legAt(i));
    for (const Counter counter : kAllCounters)
        report.counters[static_cast<std::size_t>(counter)] =
            collector.total(counter);
    for (const auto &failure : failures) {
        for (auto &leg : report.legs) {
            if (leg.bench != failure.bench)
                continue;
            if (failure.sizeBytes != 0 &&
                leg.sizeBytes != failure.sizeBytes)
                continue;
            leg.failed = true;
            if (leg.failure.empty())
                leg.failure = failure.status;
        }
    }
    report.failures = std::move(failures);
    return report;
}

std::string
RunReport::toJson(ReportDetail detail) const
{
    const bool full = detail == ReportDetail::Full;
    std::string out = "{\n\"schema\":\"dynex-metrics-v1\",\n";

    out += "\"run\":{\"trace\":" + jsonString(run.trace) +
           ",\"refs\":" + jsonU64(run.refs) +
           ",\"lineBytes\":" + jsonU64(run.lineBytes) +
           ",\"engine\":" + jsonString(run.engine);
    if (full)
        out += ",\"workers\":" + jsonU64(run.workers);
    out += "},\n";

    out += "\"counters\":{";
    bool first = true;
    for (const Counter counter : kAllCounters) {
        if (!full && isTimingCounter(counter))
            continue;
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += counterName(counter);
        out += "\":";
        out +=
            jsonU64(counters[static_cast<std::size_t>(counter)]);
    }
    out += "},\n";

    if (!extra.empty()) {
        out += "\"server\":{";
        for (std::size_t e = 0; e < extra.size(); ++e) {
            if (e)
                out += ',';
            out += '"';
            out += extra[e].first;
            out += "\":" + jsonU64(extra[e].second);
        }
        out += "},\n";
    }

    out += "\"legs\":[";
    for (std::size_t i = 0; i < legs.size(); ++i) {
        const LegMetrics &leg = legs[i];
        out += i ? ",\n" : "\n";
        out += "{\"bench\":" + jsonString(leg.bench) +
               ",\"sizeBytes\":" + jsonU64(leg.sizeBytes) +
               ",\"ok\":" +
               (leg.done && !leg.failed ? "true" : "false") +
               ",\"refs\":" + jsonU64(leg.refs) + ",";
        appendStats(out, "dm", leg.dm);
        out += ',';
        appendStats(out, "de", leg.de);
        out += ',';
        appendStats(out, "opt", leg.opt);
        out += ",\"deEvents\":{";
        for (std::size_t e = 0; e < kAllFsmEvents.size(); ++e) {
            if (e)
                out += ',';
            out += '"';
            out += fsmEventName(kAllFsmEvents[e]);
            out += "\":" + jsonU64(leg.deEvents.of(kAllFsmEvents[e]));
        }
        out += "},\"deGainPct\":" +
               jsonDouble(percentReduction(leg.dm.missPercent(),
                                           leg.de.missPercent()));
        if (full)
            out += ",\"timing\":{\"replayNs\":" +
                   jsonU64(leg.replayNs) +
                   ",\"dmReplayNs\":" + jsonU64(leg.dmReplayNs) +
                   ",\"deReplayNs\":" + jsonU64(leg.deReplayNs) +
                   ",\"optReplayNs\":" + jsonU64(leg.optReplayNs) +
                   "}";
        if (leg.failed)
            out += ",\"failure\":" + jsonString(leg.failure);
        out += '}';
    }
    out += "\n],\n";

    out += "\"failures\":[";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const ReportFailure &failure = failures[i];
        out += i ? ",\n" : "\n";
        out += "{\"bench\":" + jsonString(failure.bench) +
               ",\"sizeBytes\":" + jsonU64(failure.sizeBytes) +
               ",\"model\":" + jsonString(failure.model) +
               ",\"status\":" + jsonString(failure.status) + '}';
    }
    out += "\n]\n}\n";
    return out;
}

std::string
RunReport::toCsv(ReportDetail detail) const
{
    const bool full = detail == ReportDetail::Full;
    std::ostringstream out;
    CsvWriter csv(out);

    std::vector<std::string> header = {
        "bench",        "size_bytes",  "ok",
        "refs",         "dm_miss_pct", "de_miss_pct",
        "opt_miss_pct", "de_gain_pct", "de_cold_fill",
        "de_hit",       "de_replace_unsticky",
        "de_replace_hit_last",         "de_bypass"};
    if (full)
        header.push_back("replay_ns");
    csv.writeRow(header);

    for (const LegMetrics &leg : legs) {
        std::vector<std::string> row = {
            leg.bench,
            std::to_string(leg.sizeBytes),
            leg.done && !leg.failed ? "1" : "0",
            std::to_string(leg.refs),
            jsonDouble(leg.dm.missPercent()),
            jsonDouble(leg.de.missPercent()),
            jsonDouble(leg.opt.missPercent()),
            jsonDouble(percentReduction(leg.dm.missPercent(),
                                        leg.de.missPercent())),
            std::to_string(leg.deEvents.of(FsmEvent::ColdFill)),
            std::to_string(leg.deEvents.of(FsmEvent::Hit)),
            std::to_string(
                leg.deEvents.of(FsmEvent::ReplaceUnsticky)),
            std::to_string(
                leg.deEvents.of(FsmEvent::ReplaceHitLast)),
            std::to_string(leg.deEvents.of(FsmEvent::Bypass))};
        if (full)
            row.push_back(std::to_string(leg.replayNs));
        csv.writeRow(row);
    }
    return out.str();
}

Status
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return Status::ioError("cannot open " + path + ": " +
                               std::strerror(errno));
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out)
        return Status::ioError("cannot write " + path + ": " +
                               std::strerror(errno));
    return Status();
}

} // namespace obs
} // namespace dynex
