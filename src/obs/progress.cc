#include "obs/progress.h"

#include <algorithm>

#include "obs/log.h"

namespace dynex
{
namespace obs
{

namespace
{

std::atomic<ProgressBar *> activeBar{nullptr};

constexpr int kBarWidth = 32;

} // namespace

ProgressBar::ProgressBar(std::string label, std::uint64_t total,
                         std::FILE *out)
    : barLabel(std::move(label)), totalUnits(total), sink(out)
{
}

ProgressBar::~ProgressBar()
{
    finish();
}

ProgressBar *
ProgressBar::active()
{
    return activeBar.load(std::memory_order_relaxed);
}

void
ProgressBar::setActive(ProgressBar *bar)
{
    activeBar.store(bar, std::memory_order_relaxed);
}

void
ProgressBar::add(std::uint64_t delta)
{
    const std::uint64_t done_units =
        doneUnits.fetch_add(delta) + delta;
    if (finished.load(std::memory_order_relaxed))
        return;
    // Redraw only on a visible (permille) change, and only if the draw
    // lock is free: workers never block on terminal I/O.
    const std::uint64_t permille =
        totalUnits ? std::min<std::uint64_t>(
                         1000, done_units * 1000 / totalUnits)
                   : done_units;
    if (permille == lastDrawnPermille.load(std::memory_order_relaxed))
        return;
    if (!drawMutex.try_lock())
        return;
    lastDrawnPermille.store(permille, std::memory_order_relaxed);
    draw(done_units, false);
    drawMutex.unlock();
}

void
ProgressBar::finish()
{
    if (finished.exchange(true))
        return;
    std::lock_guard<std::mutex> lock(drawMutex);
    draw(doneUnits.load(), true);
}

void
ProgressBar::redraw()
{
    if (finished.load(std::memory_order_relaxed))
        return;
    if (!drawMutex.try_lock())
        return;
    draw(doneUnits.load(), false);
    drawMutex.unlock();
}

void
ProgressBar::draw(std::uint64_t done_units, bool final_draw)
{
    // Tear-free interleaving with the structured logger: both writers
    // hold the shared sink mutex across the actual terminal write.
    // Ordering is always drawMutex -> sinkMutex (the logger takes
    // sinkMutex alone and calls redraw() only after releasing it).
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (totalUnits) {
        const std::uint64_t capped =
            std::min(done_units, totalUnits);
        const int filled = static_cast<int>(
            capped * kBarWidth / totalUnits);
        char bar[kBarWidth + 1];
        for (int i = 0; i < kBarWidth; ++i)
            bar[i] = i < filled ? '#' : '-';
        bar[kBarWidth] = '\0';
        std::fprintf(sink, "\r%s [%s] %5.1f%%", barLabel.c_str(), bar,
                     100.0 * static_cast<double>(capped) /
                         static_cast<double>(totalUnits));
    } else {
        std::fprintf(sink, "\r%s %llu", barLabel.c_str(),
                     static_cast<unsigned long long>(done_units));
    }
    if (final_draw)
        std::fputc('\n', sink);
    std::fflush(sink);
}

} // namespace obs
} // namespace dynex
