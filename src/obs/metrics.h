/**
 * @file
 * The sweep-engine metrics registry: per-leg slots written by whichever
 * worker runs the leg, plus per-thread counter shards for totals that
 * have no natural leg (trace I/O, index builds).
 *
 * Determinism contract: slots are registered serially from the input
 * axes before a sweep fans out, so the slot order is a pure function of
 * the request — never of scheduling. Each slot has exactly one writer
 * (the worker that runs its leg), and aggregation walks slots in
 * registration (leg-index) order after the fan-out completes. Counter
 * shards hold unsigned integers, whose sum is associative, so shard
 * totals are also independent of the worker count. Everything a
 * RunReport emits in its deterministic detail level is therefore
 * byte-stable across worker counts.
 *
 * Cost model: the engines consult one global pointer per *leg* (or per
 * 4096-reference chunk), never per reference, so the metrics layer is
 * free when no collector is installed — the acceptance gate is <= 1%
 * on BM_SweepBatched with metrics compiled in but disabled.
 */

#ifndef DYNEX_OBS_METRICS_H
#define DYNEX_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/dynamic_exclusion.h"
#include "cache/stats.h"

namespace dynex
{
namespace obs
{

/** Monotonic nanoseconds for interval math (steady_clock based). */
std::uint64_t monotonicNs();

/** Process-wide integer totals a sweep accumulates off the leg grid.
 * The Srv/Store groups are written by the serving subsystem
 * (src/server): requests handled, wire bytes moved, and the
 * TraceStore's hit/miss/eviction tallies all flow through the same
 * sharded counters as the sweep engines' totals, so one collector
 * covers a whole server lifetime. */
enum class Counter : std::uint8_t
{
    TraceLoadNs,   ///< wall time spent loading/generating traces
    TraceLoadRefs, ///< references loaded or generated
    IndexBuildNs,  ///< wall time spent building next-use indexes
    IndexBuilds,   ///< next-use indexes built
    ReplayChunks,  ///< batched replay chunks processed
    SrvRequests,   ///< server requests answered (any outcome)
    SrvErrors,     ///< server requests answered with an ERROR frame
    SrvBusy,       ///< connections rejected with a BUSY frame
    SrvBytesIn,    ///< request bytes read off the wire
    SrvBytesOut,   ///< response bytes written to the wire
    StoreHits,     ///< TraceStore lookups served from memory
    StoreMisses,   ///< TraceStore lookups that triggered a load
    StoreEvictions,///< TraceStore entries evicted for the byte budget
    StoreBytesSaved,  ///< budget saved by encoded-size residency charges
    StoreEncodedHits, ///< TraceStore loads charged at encoded size
    SrvAdmitted,      ///< cost-bearing requests past admission control
    SrvShed,          ///< requests shed with a BUSY + retry-after hint
    SrvRetryAfterMs,  ///< summed retry-after hints handed to clients
    ChaosBusy,        ///< chaos: forced BUSY answers
    ChaosTrunc,       ///< chaos: truncated response frames
    ChaosDelay,       ///< chaos: injected pre-handling delays
    ChaosLoadFail,    ///< chaos: injected TraceStore load failures
};

inline constexpr std::size_t kCounterCount = 22;

/** Stable lowercase name for @p counter (JSON keys, tables). */
const char *counterName(Counter counter);

/**
 * Everything recorded about one (bench, cache size) sweep leg. Slots
 * are value-initialized at registration; the worker that runs the leg
 * fills the rest and flips done.
 */
struct LegMetrics
{
    std::string bench;
    std::uint64_t sizeBytes = 0;

    Count refs = 0;            ///< references replayed through the leg
    CacheStats dm;             ///< conventional direct-mapped result
    CacheStats de;             ///< dynamic-exclusion result
    CacheStats opt;            ///< optimal result
    FsmEventCounts deEvents;   ///< dynamic exclusion FSM transitions

    /** Wall time of the leg's triad replay: contiguous under the
     * per-leg engine, the sum of this leg's per-chunk slices under the
     * batched engine. */
    std::uint64_t replayNs = 0;
    std::uint64_t dmReplayNs = 0;  ///< batched engines: per-model split
    std::uint64_t deReplayNs = 0;
    std::uint64_t optReplayNs = 0;

    bool done = false;   ///< the leg completed and the fields are valid
    bool failed = false; ///< the leg failed (checked sweeps)
    std::string failure; ///< status text when failed
};

/**
 * One sweep's metrics: a registry of leg slots plus sharded counters.
 *
 * Lifecycle: register every leg serially (addLeg), install the
 * collector (setActiveMetrics), run the sweep, uninstall, then read
 * legs/totals serially. leg() lookups during the run are lock-free
 * reads of a frozen map; each returned slot is written by exactly one
 * worker, so slots need no synchronization either.
 */
class MetricsCollector
{
  public:
    MetricsCollector();
    MetricsCollector(const MetricsCollector &) = delete;
    MetricsCollector &operator=(const MetricsCollector &) = delete;

    /**
     * Register the leg (bench, size_bytes) and return its slot index.
     * Call serially before the sweep fans out; registration order
     * defines the deterministic aggregation order.
     */
    std::size_t addLeg(const std::string &bench,
                       std::uint64_t size_bytes);

    /**
     * The slot registered for (bench, size_bytes), or nullptr when the
     * leg was never registered (engines treat that as "not observed").
     * Safe to call concurrently once registration is done.
     */
    LegMetrics *leg(const std::string &bench, std::uint64_t size_bytes);

    /** Slot @p index in registration order. */
    LegMetrics &legAt(std::size_t index) { return *slots[index]; }
    const LegMetrics &legAt(std::size_t index) const
    {
        return *slots[index];
    }

    std::size_t legCount() const { return slots.size(); }

    /**
     * Add @p delta to @p counter on this thread's shard. Thread-safe
     * and contention-free after a thread's first touch (which
     * registers the shard under a mutex).
     */
    void add(Counter counter, std::uint64_t delta);

    /** Sum of @p counter across all shards: call after the sweep. The
     * result is worker-count independent (integer addition). */
    std::uint64_t total(Counter counter) const;

  private:
    struct Shard
    {
        std::array<std::uint64_t, kCounterCount> values{};
    };

    Shard &shardForThisThread();

    /** Process-unique id: the per-thread shard cache keys on it, so a
     * new collector reusing a freed collector's address can never
     * alias a stale cached shard pointer. */
    const std::uint64_t collectorId;

    /** unique_ptr elements so slot addresses survive registration
     * growth; workers hold raw pointers across the fan-out. */
    std::vector<std::unique_ptr<LegMetrics>> slots;
    std::unordered_map<std::string, std::size_t> slotIndex;

    mutable std::mutex shardMutex;
    std::vector<std::unique_ptr<Shard>> shards;
};

/** The installed collector, or nullptr: one relaxed atomic load. */
MetricsCollector *activeMetrics();

/** Install @p collector (nullptr disables). The caller owns it and
 * must uninstall before destroying it or starting another sweep. */
void setActiveMetrics(MetricsCollector *collector);

/** RAII installer for setActiveMetrics. */
class ScopedMetrics
{
  public:
    explicit ScopedMetrics(MetricsCollector *collector)
    {
        setActiveMetrics(collector);
    }
    ~ScopedMetrics() { setActiveMetrics(nullptr); }
    ScopedMetrics(const ScopedMetrics &) = delete;
    ScopedMetrics &operator=(const ScopedMetrics &) = delete;
};

} // namespace obs
} // namespace dynex

#endif // DYNEX_OBS_METRICS_H
