/**
 * @file
 * Structured run reports for the sweep engine: the metrics registry's
 * leg slots plus the checked engines' failure records, rendered as
 * JSON (`--metrics-out`) and CSV (`--csv-out`).
 *
 * Emission walks legs in registration (leg-index) order and renders
 * numbers with fixed formats, so at the Deterministic detail level —
 * which omits wall-clock timings and the worker count, the only fields
 * that legitimately vary run to run — the report is byte-stable across
 * worker counts and replay engines.
 */

#ifndef DYNEX_OBS_RUN_REPORT_H
#define DYNEX_OBS_RUN_REPORT_H

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace dynex
{
namespace obs
{

/** What a report includes. */
enum class ReportDetail
{
    /** Everything, including wall-clock timings and worker count. */
    Full,
    /** Only worker-count-invariant fields: byte-stable output. */
    Deterministic,
};

/** Identity of the run the report describes. */
struct RunInfo
{
    std::string trace;          ///< trace or suite name
    Count refs = 0;             ///< references per replay
    std::uint32_t lineBytes = 0;
    std::string engine;         ///< "batched" or "per-leg"
    unsigned workers = 0;       ///< pool size (Full detail only)
};

/** One failed sweep leg, in report form (decoupled from the engine's
 * FailedLeg so obs does not depend on the sim layer). */
struct ReportFailure
{
    std::string bench;
    std::uint64_t sizeBytes = 0; ///< 0 = the whole benchmark failed
    std::string model = "triad";
    std::string status;          ///< Status::toString() text
};

/** A finished sweep's metrics, ready to serialize. */
class RunReport
{
  public:
    RunInfo run;
    std::vector<LegMetrics> legs;       ///< in registration order
    std::vector<ReportFailure> failures;
    /** Counter totals, indexed by Counter. */
    std::array<std::uint64_t, kCounterCount> counters{};
    /**
     * Extra named totals with no Counter slot (the server's
     * per-request-type tallies, queue high-water, TraceStore resident
     * bytes). Emitted as a "server" JSON object, in insertion order,
     * when non-empty; sweeps leave it empty.
     */
    std::vector<std::pair<std::string, std::uint64_t>> extra;

    /**
     * Assemble a report: legs are copied from @p collector in slot
     * order, counter shards are aggregated, and @p failures are
     * attached (legs matching a failure's (bench, size) — or any leg
     * of a bench-wide failure — are marked failed).
     */
    static RunReport build(RunInfo info,
                           const MetricsCollector &collector,
                           std::vector<ReportFailure> failures = {});

    /** The JSON document ("dynex-metrics-v1" schema). */
    std::string toJson(ReportDetail detail = ReportDetail::Full) const;

    /** The sweep table as CSV: one row per leg, miss rates, FSM event
     * counts, and (Full detail) replay timings. */
    std::string toCsv(ReportDetail detail = ReportDetail::Full) const;
};

/** Write @p content to @p path, replacing any existing file. */
Status writeTextFile(const std::string &path,
                     const std::string &content);

} // namespace obs
} // namespace dynex

#endif // DYNEX_OBS_RUN_REPORT_H
