/**
 * @file
 * Fixed-bucket and log2-bucket histograms for reference-distance and
 * conflict-depth analyses.
 */

#ifndef DYNEX_UTIL_HISTOGRAM_H
#define DYNEX_UTIL_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace dynex
{

/**
 * Histogram over power-of-two buckets: bucket i counts samples in
 * [2^i, 2^(i+1)), with bucket 0 also holding the value 0.
 */
class Log2Histogram
{
  public:
    /** Add one sample. */
    void add(std::uint64_t value, Count weight = 1);

    /** Number of non-empty buckets (index of highest + 1). */
    std::size_t bucketCount() const { return buckets.size(); }

    /** Count in bucket @p index (0 if beyond the populated range). */
    Count bucket(std::size_t index) const;

    /** Total weight of all samples. */
    Count total() const { return totalWeight; }

    /** Smallest value v such that at least fraction @p q of weight <= v
     * bucket upper bound; a coarse quantile on bucket boundaries. */
    std::uint64_t quantileUpperBound(double q) const;

    /** Render as "bucket-range: count" lines. */
    std::string toString() const;

  private:
    std::vector<Count> buckets;
    Count totalWeight = 0;
};

} // namespace dynex

#endif // DYNEX_UTIL_HISTOGRAM_H
