/**
 * @file
 * Small statistics accumulators used by cache models and benches.
 */

#ifndef DYNEX_UTIL_STATS_H
#define DYNEX_UTIL_STATS_H

#include <cstdint>
#include <limits>
#include <vector>

#include "util/types.h"

namespace dynex
{

/**
 * Streaming mean / variance / min / max accumulator (Welford's
 * algorithm, numerically stable in one pass).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Remove all observations. */
    void reset();

    std::uint64_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    std::uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double total = 0.0;
};

/** A hits-out-of-total ratio with convenience percentage accessors. */
class Ratio
{
  public:
    Ratio() = default;
    Ratio(Count numerator, Count denominator)
        : num(numerator), den(denominator)
    {}

    void addNumerator(Count k = 1) { num += k; }
    void addDenominator(Count k = 1) { den += k; }

    Count numerator() const { return num; }
    Count denominator() const { return den; }

    /** @return num/den, or 0 if the denominator is zero. */
    double value() const { return den ? static_cast<double>(num) / den : 0.0; }
    /** @return the ratio expressed in percent. */
    double percent() const { return 100.0 * value(); }

  private:
    Count num = 0;
    Count den = 0;
};

/**
 * Relative improvement of @p candidate over @p baseline, in percent.
 * Positive means the candidate is lower (better, for miss rates).
 * @return 0 when the baseline is zero.
 */
double percentReduction(double baseline, double candidate);

/** Arithmetic mean of a vector; 0 for an empty vector. */
double mean(const std::vector<double> &values);

/** Geometric mean of a vector of positive values; 0 for an empty vector. */
double geometricMean(const std::vector<double> &values);

} // namespace dynex

#endif // DYNEX_UTIL_STATS_H
