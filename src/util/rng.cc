#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace dynex
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : state)
        word = sm.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    DYNEX_ASSERT(bound > 0, "nextBelow bound must be positive");
    // Lemire's nearly-divisionless unbiased bounded sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    DYNEX_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    DYNEX_ASSERT(p > 0.0 && p <= 1.0, "geometric p must be in (0,1]");
    if (p >= 1.0)
        return 1;
    const double u = nextDouble();
    const double trials = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    return trials < 1.0 ? 1 : static_cast<std::uint64_t>(trials);
}

Rng
Rng::fork(std::uint64_t salt)
{
    return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ull));
}

ZipfSampler::ZipfSampler(std::uint64_t rng_seed, std::uint64_t n, double s)
    : rng(rng_seed), numItems(n), expo(s)
{
    DYNEX_ASSERT(n > 0, "zipf needs at least one item");
    DYNEX_ASSERT(s >= 0.0, "zipf exponent must be non-negative");
    sValue = s;
    hIntegralX1 = hIntegral(1.5) - 1.0;
    hIntegralNumItems = hIntegral(static_cast<double>(numItems) + 0.5);
}

double
ZipfSampler::hIntegral(double x) const
{
    const double log_x = std::log(x);
    // Integral of x^(-s): uses expm1/log1p-stable helper around s == 1.
    const double t = log_x * (1.0 - sValue);
    const double helper =
        std::abs(t) > 1e-8 ? std::expm1(t) / t : 1.0 + t / 2.0 + t * t / 6.0;
    return helper * log_x;
}

double
ZipfSampler::hIntegralInverse(double x) const
{
    double t = x * (1.0 - sValue);
    if (t < -1.0)
        t = -1.0;
    const double helper =
        std::abs(t) > 1e-8 ? std::log1p(t) / t : 1.0 - t / 2.0 + t * t / 3.0;
    return std::exp(helper * x);
}

double
ZipfSampler::h(double x) const
{
    return std::exp(-sValue * std::log(x));
}

std::uint64_t
ZipfSampler::next()
{
    while (true) {
        const double u = hIntegralNumItems +
            rng.nextDouble() * (hIntegralX1 - hIntegralNumItems);
        const double x = hIntegralInverse(u);
        double k = std::floor(x + 0.5);
        if (k < 1.0)
            k = 1.0;
        else if (k > static_cast<double>(numItems))
            k = static_cast<double>(numItems);
        if (k - x <= 0.5 || u >= hIntegral(k + 0.5) - h(k)) {
            return static_cast<std::uint64_t>(k) - 1;
        }
    }
}

} // namespace dynex
