#include "util/status.h"

#include <new>

namespace dynex
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::CorruptInput:
        return "corrupt-input";
      case StatusCode::IoError:
        return "io-error";
      case StatusCode::ResourceLimit:
        return "resource-limit";
      case StatusCode::Internal:
        return "internal";
    }
    return "unknown";
}

Status
Status::corruptInput(std::string message)
{
    return Status(StatusCode::CorruptInput, std::move(message));
}

Status
Status::ioError(std::string message)
{
    return Status(StatusCode::IoError, std::move(message));
}

Status
Status::resourceLimit(std::string message)
{
    return Status(StatusCode::ResourceLimit, std::move(message));
}

Status
Status::internal(std::string message)
{
    return Status(StatusCode::Internal, std::move(message));
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    std::string out = statusCodeName(statusCode);
    if (!text.empty()) {
        out += ": ";
        out += text;
    }
    return out;
}

Status
Status::withContext(const std::string &context) const
{
    if (ok())
        return *this;
    return Status(statusCode, context + ": " + text);
}

Status
statusFromException(std::exception_ptr error)
{
    if (!error)
        return Status();
    try {
        std::rethrow_exception(error);
    } catch (const StatusError &e) {
        return e.status();
    } catch (const std::bad_alloc &) {
        return Status::resourceLimit("allocation failed");
    } catch (const std::exception &e) {
        return Status::internal(e.what());
    } catch (...) {
        return Status::internal("unknown exception");
    }
}

} // namespace dynex
