#include "util/status.h"

#include <new>

namespace dynex
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::CorruptInput:
        return "corrupt-input";
      case StatusCode::IoError:
        return "io-error";
      case StatusCode::ResourceLimit:
        return "resource-limit";
      case StatusCode::Internal:
        return "internal";
      case StatusCode::DeadlineExceeded:
        return "deadline-exceeded";
      case StatusCode::Busy:
        return "busy";
    }
    return "unknown";
}

bool
isRetryableCode(StatusCode code)
{
    return code == StatusCode::Busy || code == StatusCode::IoError;
}

Status
Status::corruptInput(std::string message)
{
    return Status(StatusCode::CorruptInput, std::move(message));
}

Status
Status::ioError(std::string message)
{
    return Status(StatusCode::IoError, std::move(message));
}

Status
Status::resourceLimit(std::string message)
{
    return Status(StatusCode::ResourceLimit, std::move(message));
}

Status
Status::internal(std::string message)
{
    return Status(StatusCode::Internal, std::move(message));
}

Status
Status::deadlineExceeded(std::string message)
{
    return Status(StatusCode::DeadlineExceeded, std::move(message));
}

Status
Status::busy(std::string message, std::uint32_t retry_after_ms)
{
    Status status(StatusCode::Busy, std::move(message));
    status.retryAfterHintMs = retry_after_ms;
    return status;
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    std::string out = statusCodeName(statusCode);
    if (!text.empty()) {
        out += ": ";
        out += text;
    }
    return out;
}

Status
Status::withContext(const std::string &context) const
{
    if (ok())
        return *this;
    Status status(statusCode, context + ": " + text);
    status.retryAfterHintMs = retryAfterHintMs;
    return status;
}

Status
statusFromException(std::exception_ptr error)
{
    if (!error)
        return Status();
    try {
        std::rethrow_exception(error);
    } catch (const StatusError &e) {
        return e.status();
    } catch (const std::bad_alloc &) {
        return Status::resourceLimit("allocation failed");
    } catch (const std::exception &e) {
        return Status::internal(e.what());
    } catch (...) {
        return Status::internal("unknown exception");
    }
}

} // namespace dynex
