/**
 * @file
 * A fixed-size task-queue thread pool with a blocking parallelFor
 * helper, shared by the simulation engine to fan independent
 * simulations out across cores.
 *
 * Design constraints, in order:
 *   1. Determinism — parallelFor only distributes *indices*; callers
 *      write results into pre-sized slots, so output never depends on
 *      scheduling.
 *   2. Composability — parallelFor may be called from inside a
 *      parallelFor body (nested loops). The calling thread always
 *      participates in its own loop, so progress never depends on a
 *      free worker being available and nesting cannot deadlock.
 *   3. Zero overhead when serial — with one configured worker (or a
 *      single-element loop) the body runs inline on the caller with no
 *      locking, no allocation, and no thread handoff.
 */

#ifndef DYNEX_UTIL_THREAD_POOL_H
#define DYNEX_UTIL_THREAD_POOL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dynex
{

/** One captured exception of an error-aggregating parallel loop. */
struct IndexedError
{
    std::size_t index = 0;
    std::exception_ptr error;
};

/**
 * Fixed-size worker pool.
 *
 * The pool owns `workers - 1` background threads; the thread calling
 * parallelFor is always the remaining participant. Worker count is
 * fixed at construction. The process-wide instance (global()) sizes
 * itself from the DYNEX_THREADS environment variable, falling back to
 * std::thread::hardware_concurrency().
 */
class ThreadPool
{
  public:
    /** @param workers total participants per loop (>= 1); 0 means
     * "use configuredWorkers()". */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins all background threads. No parallelFor may be in flight. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total participants per loop (background threads + caller). */
    unsigned workers() const { return workerTarget; }

    /**
     * Run body(i) for every i in [0, n), distributing indices across
     * the pool; blocks until every index has completed. The calling
     * thread participates. If any body throws, the first exception is
     * rethrown here after the loop drains. Safe to call from inside
     * another parallelFor body.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * The error-aggregating variant of parallelFor: every index runs
     * regardless of failures, and instead of rethrowing the first
     * exception the loop drains *all* of them and returns one entry
     * per throwing index, sorted by index (so the result is
     * deterministic at any worker count). An empty vector means every
     * body completed. The pool remains fully usable afterwards.
     */
    std::vector<IndexedError>
    parallelForCollect(std::size_t n,
                       const std::function<void(std::size_t)> &body);

    /**
     * The worker count the process is configured for: the last
     * setConfiguredWorkers() value if set, else DYNEX_THREADS if set
     * and positive, else hardware_concurrency() (minimum 1).
     */
    static unsigned configuredWorkers();

    /**
     * Override the configured worker count (0 restores the automatic
     * DYNEX_THREADS / hardware default) and rebuild the global pool at
     * the new size. Must not be called while any thread is inside
     * global().parallelFor(). Used by the CLI --threads flag and by
     * tests that pin the thread count.
     */
    static void setConfiguredWorkers(unsigned workers);

    /** The process-wide pool, built on first use. */
    static ThreadPool &global();

    /**
     * Observation callback for loop-index execution: reports the index
     * and its wall-clock interval after the body returns (or throws).
     * The observability layer installs one to emit ThreadPool job
     * spans into a Chrome trace; keep it cheap and thread-safe.
     */
    using JobObserver =
        void (*)(std::size_t index,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end);

    /**
     * Install @p observer for every pool (nullptr disables). Read with
     * one relaxed atomic load per loop index, so the disabled cost is
     * a single predictable branch per index — never per reference.
     */
    static void setJobObserver(JobObserver observer);

  private:
    /** One parallelFor's shared state; helpers pull indices from it. */
    struct Loop
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::size_t total = 0;
        const std::function<void(std::size_t)> *body = nullptr;
        std::mutex doneMutex;
        std::condition_variable doneCv;
        std::once_flag errorOnce;
        std::exception_ptr error;
        /** When set, every exception is appended here (under
         * errorsMutex) instead of keeping only the first. */
        std::vector<IndexedError> *errors = nullptr;
        std::mutex errorsMutex;
    };

    void workerMain();
    void runShared(std::size_t n,
                   const std::function<void(std::size_t)> &body,
                   std::vector<IndexedError> *errors);
    static void runLoop(Loop &loop);

    unsigned workerTarget;
    std::vector<std::thread> threads;
    std::deque<std::shared_ptr<Loop>> queue;
    std::mutex queueMutex;
    std::condition_variable queueCv;
    bool stopping = false;
};

} // namespace dynex

#endif // DYNEX_UTIL_THREAD_POOL_H
