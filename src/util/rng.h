/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All trace generators in this library derive their randomness from
 * these generators so that every benchmark, test and example is exactly
 * reproducible across runs and platforms. std::mt19937 is deliberately
 * avoided: its distributions are not specified bit-exactly across
 * standard library implementations.
 */

#ifndef DYNEX_UTIL_RNG_H
#define DYNEX_UTIL_RNG_H

#include <array>
#include <cstdint>

namespace dynex
{

/**
 * SplitMix64: a tiny, fast 64-bit generator, used mainly to seed
 * Xoshiro256StarStar and to derive independent child seeds.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** @return the next 64 pseudo-random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256** by Blackman & Vigna: the library's workhorse generator.
 * Fast, high quality, and with a tiny state that is cheap to fork.
 */
class Rng
{
  public:
    /** Construct from a single seed, expanded with SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x1992'0519'0032'0001ull);

    /** @return the next 64 pseudo-random bits. */
    std::uint64_t next();

    /** @return a uniform integer in [0, bound) with bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @p p. */
    bool nextBool(double p = 0.5);

    /**
     * @return a geometrically distributed trial count >= 1 with success
     * probability @p p in (0, 1]; i.e. the number of Bernoulli(p) trials
     * up to and including the first success.
     */
    std::uint64_t nextGeometric(double p);

    /**
     * Fork an independent child generator. The child's stream is a
     * deterministic function of this generator's current state and the
     * @p salt, so distinct salts give uncorrelated streams.
     */
    Rng fork(std::uint64_t salt);

  private:
    std::array<std::uint64_t, 4> state;
};

/**
 * Zipf-distributed integer sampler over [0, n), with exponent @p s.
 * Uses the rejection-inversion method of Hormann & Derflinger, which
 * needs O(1) time and no O(n) table.
 */
class ZipfSampler
{
  public:
    /**
     * @param rng_seed seed for the private generator.
     * @param n number of items (ranks 0..n-1, rank 0 most popular).
     * @param s exponent; s = 0 is uniform, larger s is more skewed.
     */
    ZipfSampler(std::uint64_t rng_seed, std::uint64_t n, double s);

    /** @return a sampled rank in [0, n). */
    std::uint64_t next();

    std::uint64_t itemCount() const { return numItems; }
    double exponent() const { return expo; }

  private:
    double hIntegral(double x) const;
    double hIntegralInverse(double x) const;
    double h(double x) const;

    Rng rng;
    std::uint64_t numItems;
    double expo;
    double hIntegralX1;
    double hIntegralNumItems;
    double sValue;
};

} // namespace dynex

#endif // DYNEX_UTIL_RNG_H
