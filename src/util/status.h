/**
 * @file
 * Structured error reporting: Status (a code plus a message) and
 * Result<T> (a value or a Status), replacing the bool + std::string*
 * idiom across trace I/O and the sweep entry points.
 *
 * Categories are deliberately coarse so callers can branch on intent:
 *   CorruptInput     the bytes/text being parsed are malformed
 *   IoError          the OS failed us (open/read/write); message
 *                    carries the errno text
 *   ResourceLimit    the input is structurally valid but implausibly
 *                    or dangerously large (e.g. a record count
 *                    exceeding the stream)
 *   Internal         an unexpected failure inside the library
 *   DeadlineExceeded a request's deadline expired before the work ran
 *   Busy             the peer shed the request under load; retryable,
 *                    optionally with a retry-after hint
 */

#ifndef DYNEX_UTIL_STATUS_H
#define DYNEX_UTIL_STATUS_H

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace dynex
{

/** Error category of a Status. */
enum class StatusCode : std::uint8_t
{
    Ok = 0,
    CorruptInput,
    IoError,
    ResourceLimit,
    Internal,
    DeadlineExceeded,
    Busy,
};

/** @return "ok", "corrupt-input", "io-error", ... */
const char *statusCodeName(StatusCode code);

/** @return true when retrying the same operation later can succeed
 * without changing the request (overload or transient transport). */
bool isRetryableCode(StatusCode code);

/**
 * An error code plus a human-readable message. Default-constructed
 * Status is Ok; errors are built via the named factories.
 */
class [[nodiscard]] Status
{
  public:
    /** Ok. */
    Status() = default;

    static Status corruptInput(std::string message);
    static Status ioError(std::string message);
    static Status resourceLimit(std::string message);
    static Status internal(std::string message);
    static Status deadlineExceeded(std::string message);
    /** Overload shedding; @p retry_after_ms of 0 means "no hint". */
    static Status busy(std::string message,
                       std::uint32_t retry_after_ms = 0);

    bool ok() const { return statusCode == StatusCode::Ok; }
    StatusCode code() const { return statusCode; }
    const std::string &message() const { return text; }

    /** Advisory retry delay carried by Busy statuses (0 = none). */
    std::uint32_t retryAfterMs() const { return retryAfterHintMs; }

    /** "corrupt-input: bad magic", or "ok". */
    std::string toString() const;

    /** A copy with "@p context: " prepended to the message. */
    Status withContext(const std::string &context) const;

  private:
    Status(StatusCode code, std::string message)
        : statusCode(code), text(std::move(message))
    {}

    StatusCode statusCode = StatusCode::Ok;
    std::string text;
    std::uint32_t retryAfterHintMs = 0;
};

/**
 * Either a T or the Status explaining why there is none. Implicitly
 * constructible from both so `return trace;` and `return
 * Status::corruptInput(...)` both work.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : contents(std::move(value)) {}

    /** @p status must not be Ok; an Ok status is recorded as an
     * Internal error rather than silently inventing a value. */
    Result(Status status)
        : contents(status.ok()
                       ? Status::internal("Result built from Ok status")
                       : std::move(status))
    {}

    bool ok() const { return std::holds_alternative<T>(contents); }
    explicit operator bool() const { return ok(); }

    /** The error, or an Ok status when a value is present. */
    const Status &
    status() const
    {
        static const Status ok_status;
        return ok() ? ok_status : std::get<Status>(contents);
    }

    T &value() & { return std::get<T>(contents); }
    const T &value() const & { return std::get<T>(contents); }
    T &&value() && { return std::get<T>(std::move(contents)); }

    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    std::variant<Status, T> contents;
};

/** A Status carried as an exception, for code that must throw (e.g.
 * bodies running under ThreadPool::parallelFor). */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()),
          statusValue(std::move(status))
    {}

    const Status &status() const { return statusValue; }

  private:
    Status statusValue;
};

/**
 * Map a captured exception to a Status: StatusError passes its status
 * through, std::bad_alloc becomes ResourceLimit, any other
 * std::exception becomes Internal with its what() text.
 */
Status statusFromException(std::exception_ptr error);

} // namespace dynex

#endif // DYNEX_UTIL_STATUS_H
