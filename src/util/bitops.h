/**
 * @file
 * Bit-manipulation helpers for power-of-two cache geometry math.
 */

#ifndef DYNEX_UTIL_BITOPS_H
#define DYNEX_UTIL_BITOPS_H

#include <bit>
#include <cstdint>

#include "util/types.h"

namespace dynex
{

/** @return true iff @p value is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/**
 * Floor of the base-2 logarithm.
 *
 * @param value must be nonzero.
 * @return largest n such that 2^n <= value.
 */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/**
 * Ceiling of the base-2 logarithm.
 *
 * @param value must be nonzero.
 * @return smallest n such that 2^n >= value.
 */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return value == 1 ? 0u : floorLog2(value - 1) + 1;
}

/** @return @p addr rounded down to a multiple of the power-of-two @p align. */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** @return @p addr rounded up to a multiple of the power-of-two @p align. */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** @return a mask with the low @p bits bits set. */
constexpr std::uint64_t
lowMask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

/** Extract @p width bits of @p value starting at bit @p offset. */
constexpr std::uint64_t
bitField(std::uint64_t value, unsigned offset, unsigned width)
{
    return (value >> offset) & lowMask(width);
}

} // namespace dynex

#endif // DYNEX_UTIL_BITOPS_H
