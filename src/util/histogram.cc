#include "util/histogram.h"

#include <sstream>

#include "util/bitops.h"
#include "util/logging.h"

namespace dynex
{

void
Log2Histogram::add(std::uint64_t value, Count weight)
{
    const std::size_t index = value == 0 ? 0 : floorLog2(value);
    if (index >= buckets.size())
        buckets.resize(index + 1, 0);
    buckets[index] += weight;
    totalWeight += weight;
}

Count
Log2Histogram::bucket(std::size_t index) const
{
    return index < buckets.size() ? buckets[index] : 0;
}

std::uint64_t
Log2Histogram::quantileUpperBound(double q) const
{
    DYNEX_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (totalWeight == 0)
        return 0;
    const auto target =
        static_cast<Count>(q * static_cast<double>(totalWeight));
    Count seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= target)
            return (std::uint64_t{1} << (i + 1)) - 1;
    }
    return (std::uint64_t{1} << buckets.size()) - 1;
}

std::string
Log2Histogram::toString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        const std::uint64_t lo = i == 0 ? 0 : (std::uint64_t{1} << i);
        const std::uint64_t hi = (std::uint64_t{1} << (i + 1)) - 1;
        oss << "[" << lo << ", " << hi << "]: " << buckets[i] << "\n";
    }
    return oss.str();
}

} // namespace dynex
