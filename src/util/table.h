/**
 * @file
 * A small column-aligned table renderer used by the experiment harness
 * to print figure/table rows in a readable fixed-width layout.
 */

#ifndef DYNEX_UTIL_TABLE_H
#define DYNEX_UTIL_TABLE_H

#include <string>
#include <vector>

namespace dynex
{

/**
 * Accumulates rows of string cells and renders them with aligned
 * columns, either as plain text or GitHub-flavored markdown.
 */
class Table
{
  public:
    enum class Align { Left, Right };

    /** Define the header row. Must be called before adding rows. */
    void setHeader(std::vector<std::string> names);

    /** Set per-column alignment; default is Left for column 0, Right
     * for the rest (the usual label-then-numbers layout). */
    void setAlignment(std::vector<Align> alignment);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with @p precision decimals. */
    static std::string fmt(double value, int precision = 2);

    /** Render as plain text with two-space gutters. */
    std::string toText() const;

    /** Render as a markdown table. */
    std::string toMarkdown() const;

    std::size_t rowCount() const { return rows.size(); }
    std::size_t columnCount() const { return header.size(); }

    const std::vector<std::string> &headerRow() const { return header; }
    const std::vector<std::vector<std::string>> &dataRows() const
    {
        return rows;
    }

  private:
    std::vector<std::size_t> columnWidths() const;
    Align alignOf(std::size_t column) const;

    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
    std::vector<Align> aligns;
};

} // namespace dynex

#endif // DYNEX_UTIL_TABLE_H
