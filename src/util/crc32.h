/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used by the
 * DXT2 trace format to checksum headers and record payloads. The
 * incremental form lets writers fold the CRC over streamed chunks
 * without buffering the whole payload.
 */

#ifndef DYNEX_UTIL_CRC32_H
#define DYNEX_UTIL_CRC32_H

#include <cstddef>
#include <cstdint>

namespace dynex
{

/**
 * Fold @p size bytes at @p data into a running CRC-32.
 *
 * Start with crc32Init(), chain the returned value through successive
 * calls, and finish with crc32Final(). crc32Of() wraps the three for
 * one-shot use; chained calls over chunks of a buffer produce exactly
 * the one-shot value.
 */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t size);

/** Initial running value (all-ones preset). */
inline std::uint32_t
crc32Init()
{
    return 0xffff'ffffu;
}

/** Final xor of a running value. */
inline std::uint32_t
crc32Final(std::uint32_t crc)
{
    return crc ^ 0xffff'ffffu;
}

/** One-shot CRC-32 of a buffer. */
inline std::uint32_t
crc32Of(const void *data, std::size_t size)
{
    return crc32Final(crc32Update(crc32Init(), data, size));
}

} // namespace dynex

#endif // DYNEX_UTIL_CRC32_H
