#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace dynex
{

void
Table::setHeader(std::vector<std::string> names)
{
    DYNEX_ASSERT(rows.empty(), "header must be set before rows");
    header = std::move(names);
}

void
Table::setAlignment(std::vector<Align> alignment)
{
    aligns = std::move(alignment);
}

void
Table::addRow(std::vector<std::string> cells)
{
    DYNEX_ASSERT(cells.size() == header.size(),
                 "row width ", cells.size(), " != header width ",
                 header.size());
    rows.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::vector<std::size_t>
Table::columnWidths() const
{
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    return widths;
}

Table::Align
Table::alignOf(std::size_t column) const
{
    if (column < aligns.size())
        return aligns[column];
    return column == 0 ? Align::Left : Align::Right;
}

namespace
{

void
appendCell(std::ostringstream &oss, const std::string &cell,
           std::size_t width, Table::Align align)
{
    const std::size_t pad = width > cell.size() ? width - cell.size() : 0;
    if (align == Table::Align::Right)
        oss << std::string(pad, ' ') << cell;
    else
        oss << cell << std::string(pad, ' ');
}

} // namespace

std::string
Table::toText() const
{
    const auto widths = columnWidths();
    std::ostringstream oss;
    for (std::size_t c = 0; c < header.size(); ++c) {
        if (c)
            oss << "  ";
        appendCell(oss, header[c], widths[c], alignOf(c));
    }
    oss << "\n";
    for (std::size_t c = 0; c < header.size(); ++c) {
        if (c)
            oss << "  ";
        oss << std::string(widths[c], '-');
    }
    oss << "\n";
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                oss << "  ";
            appendCell(oss, row[c], widths[c], alignOf(c));
        }
        oss << "\n";
    }
    return oss.str();
}

std::string
Table::toMarkdown() const
{
    const auto widths = columnWidths();
    std::ostringstream oss;
    oss << "|";
    for (std::size_t c = 0; c < header.size(); ++c) {
        oss << " ";
        appendCell(oss, header[c], widths[c], alignOf(c));
        oss << " |";
    }
    oss << "\n|";
    for (std::size_t c = 0; c < header.size(); ++c) {
        const bool right = alignOf(c) == Align::Right;
        oss << (right ? " " : " :") << std::string(widths[c], '-')
            << (right ? ": |" : " |");
    }
    oss << "\n";
    for (const auto &row : rows) {
        oss << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << " ";
            appendCell(oss, row[c], widths[c], alignOf(c));
            oss << " |";
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace dynex
