#include "util/string_utils.h"

#include <cctype>
#include <sstream>

namespace dynex
{

std::string
formatSize(std::uint64_t bytes)
{
    static constexpr const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    std::uint64_t value = bytes;
    std::size_t unit = 0;
    while (unit + 1 < std::size(units) && value >= 1024 &&
           value % 1024 == 0) {
        value /= 1024;
        ++unit;
    }
    std::ostringstream oss;
    oss << value << units[unit];
    return oss.str();
}

std::optional<std::uint64_t>
parseSize(const std::string &text)
{
    const std::string s = trim(text);
    if (s.empty())
        return std::nullopt;

    std::size_t pos = 0;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos])))
        ++pos;
    if (pos == 0)
        return std::nullopt;

    std::uint64_t value = 0;
    for (std::size_t i = 0; i < pos; ++i) {
        const auto digit = static_cast<std::uint64_t>(s[i] - '0');
        if (value > (~std::uint64_t{0} - digit) / 10)
            return std::nullopt; // overflow
        value = value * 10 + digit;
    }

    std::string suffix;
    for (std::size_t i = pos; i < s.size(); ++i)
        suffix += static_cast<char>(
            std::toupper(static_cast<unsigned char>(s[i])));

    std::uint64_t scale = 1;
    if (suffix.empty() || suffix == "B")
        scale = 1;
    else if (suffix == "K" || suffix == "KB")
        scale = 1024;
    else if (suffix == "M" || suffix == "MB")
        scale = 1024ull * 1024;
    else if (suffix == "G" || suffix == "GB")
        scale = 1024ull * 1024 * 1024;
    else
        return std::nullopt;

    if (scale != 1 && value > ~std::uint64_t{0} / scale)
        return std::nullopt;
    return value * scale;
}

std::vector<std::string>
split(const std::string &text, char delimiter)
{
    std::vector<std::string> parts;
    std::string current;
    for (char ch : text) {
        if (ch == delimiter) {
            parts.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    if (!current.empty() || !parts.empty())
        parts.push_back(current);
    if (!parts.empty() && parts.back().empty())
        parts.pop_back();
    return parts;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

} // namespace dynex
