#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace dynex
{

namespace
{

/** Explicit override from setConfiguredWorkers (0 = automatic). */
std::atomic<unsigned> configuredOverride{0};

std::mutex globalPoolMutex;
std::unique_ptr<ThreadPool> globalPool;

std::atomic<ThreadPool::JobObserver> jobObserver{nullptr};

/** Run body(i), reporting the interval to the observer if one is
 * installed — including when the body throws, so a failing leg still
 * shows up as a span. */
void
invokeBody(const std::function<void(std::size_t)> &body, std::size_t i)
{
    const auto observer = jobObserver.load(std::memory_order_relaxed);
    if (!observer) {
        body(i);
        return;
    }
    const auto start = std::chrono::steady_clock::now();
    try {
        body(i);
    } catch (...) {
        observer(i, start, std::chrono::steady_clock::now());
        throw;
    }
    observer(i, start, std::chrono::steady_clock::now());
}

unsigned
autoWorkers()
{
    // Parsed once: the environment cannot usefully change mid-process
    // and a bad value should warn once, not on every pool query.
    static const unsigned workers = [] {
        if (const char *env = std::getenv("DYNEX_THREADS")) {
            const unsigned long value = std::strtoul(env, nullptr, 10);
            if (value >= 1)
                return static_cast<unsigned>(value);
            DYNEX_WARN("ignoring invalid DYNEX_THREADS='", env, "'");
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw >= 1 ? hw : 1;
    }();
    return workers;
}

} // namespace

void
ThreadPool::setJobObserver(JobObserver observer)
{
    jobObserver.store(observer, std::memory_order_relaxed);
}

unsigned
ThreadPool::configuredWorkers()
{
    const unsigned override = configuredOverride.load();
    return override >= 1 ? override : autoWorkers();
}

void
ThreadPool::setConfiguredWorkers(unsigned workers)
{
    configuredOverride.store(workers);
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    globalPool.reset();
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    if (!globalPool ||
        globalPool->workers() != configuredWorkers()) {
        globalPool = std::make_unique<ThreadPool>(configuredWorkers());
    }
    return *globalPool;
}

ThreadPool::ThreadPool(unsigned workers)
    : workerTarget(workers >= 1 ? workers : configuredWorkers())
{
    threads.reserve(workerTarget - 1);
    for (unsigned i = 0; i + 1 < workerTarget; ++i)
        threads.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        stopping = true;
    }
    queueCv.notify_all();
    for (auto &thread : threads)
        thread.join();
}

void
ThreadPool::workerMain()
{
    for (;;) {
        std::shared_ptr<Loop> loop;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock,
                         [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and nothing left to help with
            loop = std::move(queue.front());
            queue.pop_front();
        }
        runLoop(*loop);
    }
}

void
ThreadPool::runLoop(Loop &loop)
{
    for (;;) {
        const std::size_t i = loop.next.fetch_add(1);
        if (i >= loop.total)
            return;
        try {
            invokeBody(*loop.body, i);
        } catch (...) {
            if (loop.errors) {
                std::lock_guard<std::mutex> lock(loop.errorsMutex);
                loop.errors->push_back({i, std::current_exception()});
            } else {
                std::call_once(loop.errorOnce, [&loop] {
                    loop.error = std::current_exception();
                });
            }
        }
        if (loop.done.fetch_add(1) + 1 == loop.total) {
            // All indices finished; release the waiting caller. The
            // lock pairs with the caller's predicate check so the
            // notify cannot be lost.
            std::lock_guard<std::mutex> lock(loop.doneMutex);
            loop.doneCv.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (workerTarget <= 1 || n <= 1) {
        // Serial fast path: no shared state, no locking.
        for (std::size_t i = 0; i < n; ++i)
            invokeBody(body, i);
        return;
    }
    runShared(n, body, nullptr);
}

std::vector<IndexedError>
ThreadPool::parallelForCollect(
    std::size_t n, const std::function<void(std::size_t)> &body)
{
    std::vector<IndexedError> errors;
    if (workerTarget <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            try {
                invokeBody(body, i);
            } catch (...) {
                errors.push_back({i, std::current_exception()});
            }
        }
        return errors;
    }
    runShared(n, body, &errors);
    // Capture order depends on scheduling; index order does not.
    std::sort(errors.begin(), errors.end(),
              [](const IndexedError &a, const IndexedError &b) {
                  return a.index < b.index;
              });
    return errors;
}

void
ThreadPool::runShared(std::size_t n,
                      const std::function<void(std::size_t)> &body,
                      std::vector<IndexedError> *errors)
{
    auto loop = std::make_shared<Loop>();
    loop->total = n;
    loop->body = &body;
    loop->errors = errors;

    // One helper ticket per background thread that could usefully
    // join; late poppers see the index counter exhausted and return
    // immediately, so over-provisioning is harmless.
    const std::size_t helpers =
        std::min<std::size_t>(threads.size(), n - 1);
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        for (std::size_t i = 0; i < helpers; ++i)
            queue.push_back(loop);
    }
    if (helpers == 1)
        queueCv.notify_one();
    else
        queueCv.notify_all();

    // The caller is always a participant, so the loop completes even
    // if every background thread is busy elsewhere (e.g. nesting).
    runLoop(*loop);
    {
        std::unique_lock<std::mutex> lock(loop->doneMutex);
        loop->doneCv.wait(lock, [&loop] {
            return loop->done.load() == loop->total;
        });
    }
    if (loop->error)
        std::rethrow_exception(loop->error);
}

} // namespace dynex
