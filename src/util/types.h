/**
 * @file
 * Fundamental scalar type aliases used throughout the library.
 */

#ifndef DYNEX_UTIL_TYPES_H
#define DYNEX_UTIL_TYPES_H

#include <cstddef>
#include <cstdint>

namespace dynex
{

/** A byte address in the simulated address space. */
using Addr = std::uint64_t;

/** A count of references, misses, cycles, etc. */
using Count = std::uint64_t;

/** A trace position (index of a reference within a trace). */
using Tick = std::uint64_t;

/** Sentinel meaning "no future reference" in next-use computations. */
inline constexpr Tick kTickInfinity = ~Tick{0};

/** Sentinel for an invalid / absent address. */
inline constexpr Addr kAddrInvalid = ~Addr{0};

} // namespace dynex

#endif // DYNEX_UTIL_TYPES_H
