#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dynex
{
namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", message.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
informImpl(const std::string &message)
{
    std::fprintf(stderr, "info: %s\n", message.c_str());
}

} // namespace detail
} // namespace dynex
