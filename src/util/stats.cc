#include "util/stats.h"

#include <cmath>

namespace dynex
{

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    if (x < lo)
        lo = x;
    if (x > hi)
        hi = x;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.mu - mu;
    const auto total_n = static_cast<double>(n + other.n);
    m2 += other.m2 +
        delta * delta * static_cast<double>(n) *
            static_cast<double>(other.n) / total_n;
    mu += delta * static_cast<double>(other.n) / total_n;
    total += other.total;
    n += other.n;
    if (other.lo < lo)
        lo = other.lo;
    if (other.hi > hi)
        hi = other.hi;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    return n ? m2 / static_cast<double>(n) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentReduction(double baseline, double candidate)
{
    if (baseline == 0.0)
        return 0.0;
    return 100.0 * (baseline - candidate) / baseline;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace dynex
