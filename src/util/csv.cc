#include "util/csv.h"

namespace dynex
{

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quote =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            *sink << ',';
        *sink << escape(cells[i]);
    }
    *sink << '\n';
}

} // namespace dynex
