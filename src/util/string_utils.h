/**
 * @file
 * String helpers: byte-size formatting ("32KB") and parsing, used by
 * experiment configs and reports.
 */

#ifndef DYNEX_UTIL_STRING_UTILS_H
#define DYNEX_UTIL_STRING_UTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dynex
{

/**
 * Format a byte count compactly: exact powers scale to "512B", "32KB",
 * "2MB"; non-multiples fall back to plain bytes.
 */
std::string formatSize(std::uint64_t bytes);

/**
 * Parse sizes like "512", "512B", "32KB", "32kb", "2MB".
 * @return std::nullopt on malformed input.
 */
std::optional<std::uint64_t> parseSize(const std::string &text);

/** Split @p text on @p delimiter (no empty trailing element). */
std::vector<std::string> split(const std::string &text, char delimiter);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &text);

/** Case-insensitive ASCII string equality. */
bool iequals(const std::string &a, const std::string &b);

} // namespace dynex

#endif // DYNEX_UTIL_STRING_UTILS_H
