/**
 * @file
 * Error / status reporting in the gem5 idiom: panic() for internal bugs,
 * fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef DYNEX_UTIL_LOGGING_H
#define DYNEX_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace dynex
{

namespace detail
{

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    ((oss << std::forward<Args>(args)), ...);
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

} // namespace detail

/**
 * Report an internal invariant violation (a library bug) and abort.
 * Use for conditions that should be impossible regardless of user input.
 */
#define DYNEX_PANIC(...) \
    ::dynex::detail::panicImpl(__FILE__, __LINE__, \
                               ::dynex::detail::concat(__VA_ARGS__))

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit(1).
 */
#define DYNEX_FATAL(...) \
    ::dynex::detail::fatalImpl(__FILE__, __LINE__, \
                               ::dynex::detail::concat(__VA_ARGS__))

/** Warn about a suspicious but survivable condition. */
#define DYNEX_WARN(...) \
    ::dynex::detail::warnImpl(::dynex::detail::concat(__VA_ARGS__))

/** Emit a normal informational status message. */
#define DYNEX_INFORM(...) \
    ::dynex::detail::informImpl(::dynex::detail::concat(__VA_ARGS__))

/** Panic unless @p cond holds. */
#define DYNEX_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            DYNEX_PANIC("assertion failed: " #cond " ", __VA_ARGS__); \
        } \
    } while (false)

} // namespace dynex

#endif // DYNEX_UTIL_LOGGING_H
