/**
 * @file
 * Minimal CSV emission (RFC 4180 quoting) for machine-readable bench
 * output alongside the human-readable tables.
 */

#ifndef DYNEX_UTIL_CSV_H
#define DYNEX_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace dynex
{

/**
 * Streams rows of cells to an std::ostream as CSV, quoting cells that
 * contain commas, quotes, or newlines.
 */
class CsvWriter
{
  public:
    /** @param out sink; must outlive the writer. */
    explicit CsvWriter(std::ostream &out) : sink(&out) {}

    /** Write one row. */
    void writeRow(const std::vector<std::string> &cells);

    /** Quote a single cell per RFC 4180 if needed. */
    static std::string escape(const std::string &cell);

  private:
    std::ostream *sink;
};

} // namespace dynex

#endif // DYNEX_UTIL_CSV_H
