/**
 * @file
 * Figure 9: percentage improvement of the dynamic-exclusion L1 miss
 * rate over the conventional hierarchy, vs L2 size, for each hit-last
 * storage option (L1=32KB, b=4B).
 */

#include "hierarchy_sweep.h"
#include "util/stats.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig09",
        "Dynamic-exclusion L1 improvement vs L2 size (L1=32KB, b=4B)",
        "improvement saturates once L2 >= 4x L1; assume-hit starts at "
        "zero (degenerate) and catches up");

    report.table().setHeader({"L2/L1", "assume-hit gain %",
                              "assume-miss gain %", "hashed gain %",
                              "ideal gain %"});

    const auto rows = hierarchySweep();
    double hit_gain_at_1 = 0.0;
    double hit_gain_at_64 = 0.0;
    bool saturates = true;
    for (const auto &row : rows) {
        const double hit_gain =
            percentReduction(row.l1Dm, row.l1AssumeHit);
        const double miss_gain =
            percentReduction(row.l1Dm, row.l1AssumeMiss);
        const double hashed_gain =
            percentReduction(row.l1Dm, row.l1Hashed);
        const double ideal_gain =
            percentReduction(row.l1Dm, row.l1Ideal);
        report.table().addRow({std::to_string(row.ratio),
                               Table::fmt(hit_gain, 1),
                               Table::fmt(miss_gain, 1),
                               Table::fmt(hashed_gain, 1),
                               Table::fmt(ideal_gain, 1)});
        if (row.ratio == 1)
            hit_gain_at_1 = hit_gain;
        if (row.ratio == 64)
            hit_gain_at_64 = hit_gain;
        if (row.ratio >= 4) {
            saturates = saturates &&
                hit_gain >= 0.6 * ideal_gain &&
                miss_gain >= 0.6 * ideal_gain &&
                hashed_gain >= 0.6 * ideal_gain;
        }
    }

    report.verdict(hit_gain_at_1 < 5.0,
                   "assume-hit gains almost nothing at L2 == L1 "
                   "(degenerate)");
    report.verdict(hit_gain_at_64 > 10.0,
                   "assume-hit recovers the dynamic-exclusion gain "
                   "with a large L2");
    report.verdict(saturates,
                   "most of the ideal gain is reached at ratio >= 4");
    report.finish();
    return report.exitCode();
}
