/**
 * @file
 * Shared computation for Figures 7-9: the suite-averaged two-level
 * hierarchy sweep over relative L2 sizes, for the conventional
 * baseline and each hit-last storage policy.
 *
 * For the hashed policy the L1-side hit-last table scales with the
 * ratio (ratio entries per L1 line), matching the paper's reading of
 * Figure 7 that "the hashing strategy needs only four hit-last bits
 * for each cache line to get good performance".
 */

#ifndef DYNEX_BENCH_HIERARCHY_SWEEP_H
#define DYNEX_BENCH_HIERARCHY_SWEEP_H

#include <vector>

#include "bench_common.h"
#include "cache/hierarchy.h"

namespace dynex::bench
{

/** Suite-averaged results at one relative L2 size. */
struct HierarchyRow
{
    std::uint64_t ratio = 0; ///< L2 size / L1 size

    // L1 miss rates (percent of all references).
    double l1Dm = 0.0;
    double l1AssumeHit = 0.0;
    double l1AssumeMiss = 0.0;
    double l1Hashed = 0.0;
    double l1Ideal = 0.0;

    // L2 global miss rates (L2 misses per total reference, percent).
    double l2Dm = 0.0;
    double l2AssumeHit = 0.0;
    double l2AssumeMiss = 0.0;
    double l2Hashed = 0.0;
    double l2Ideal = 0.0;
};

/** The relative L2 sizes of Figures 7-9. */
inline std::vector<std::uint64_t>
paperL2Ratios()
{
    return {1, 2, 4, 8, 16, 32, 64};
}

/** Run the full sweep (suite-averaged) at the canonical 32KB L1. */
inline std::vector<HierarchyRow>
hierarchySweep()
{
    const auto names = suiteNames();
    const Count budget = refs();
    std::vector<HierarchyRow> rows;

    for (const std::uint64_t ratio : paperL2Ratios()) {
        HierarchyRow row;
        row.ratio = ratio;

        for (const auto &name : names) {
            const auto trace = Workloads::instructions(name, budget);

            auto run = [&](bool dynex_l1, HitLastPolicy policy) {
                HierarchyConfig config;
                config.l1 =
                    CacheGeometry::directMapped(kCacheBytes, kWordLine);
                config.l2 = CacheGeometry::directMapped(
                    kCacheBytes * ratio, kWordLine);
                config.l1DynamicExclusion = dynex_l1;
                config.policy = policy;
                config.hashedEntriesPerLine =
                    static_cast<std::uint32_t>(ratio);
                TwoLevelCache hierarchy(config);
                return runTrace(hierarchy, *trace);
            };

            const auto dm = run(false, HitLastPolicy::Ideal);
            const auto hit = run(true, HitLastPolicy::AssumeHit);
            const auto miss = run(true, HitLastPolicy::AssumeMiss);
            const auto hashed = run(true, HitLastPolicy::Hashed);
            const auto ideal = run(true, HitLastPolicy::Ideal);

            row.l1Dm += 100.0 * dm.l1.missRate();
            row.l1AssumeHit += 100.0 * hit.l1.missRate();
            row.l1AssumeMiss += 100.0 * miss.l1.missRate();
            row.l1Hashed += 100.0 * hashed.l1.missRate();
            row.l1Ideal += 100.0 * ideal.l1.missRate();

            row.l2Dm += 100.0 * dm.l2GlobalMissRate();
            row.l2AssumeHit += 100.0 * hit.l2GlobalMissRate();
            row.l2AssumeMiss += 100.0 * miss.l2GlobalMissRate();
            row.l2Hashed += 100.0 * hashed.l2GlobalMissRate();
            row.l2Ideal += 100.0 * ideal.l2GlobalMissRate();
        }

        const auto n = static_cast<double>(names.size());
        row.l1Dm /= n;
        row.l1AssumeHit /= n;
        row.l1AssumeMiss /= n;
        row.l1Hashed /= n;
        row.l1Ideal /= n;
        row.l2Dm /= n;
        row.l2AssumeHit /= n;
        row.l2AssumeMiss /= n;
        row.l2Hashed /= n;
        row.l2Ideal /= n;
        rows.push_back(row);
    }
    return rows;
}

} // namespace dynex::bench

#endif // DYNEX_BENCH_HIERARCHY_SWEEP_H
