/**
 * @file
 * Ablation: victim cache (Jouppi) vs dynamic exclusion, on instruction
 * and data streams.
 *
 * Paper (Section 2): "Victim caches work well for data references
 * where the number of conflicting items may be small. For instruction
 * references, there are usually many more conflicting items than a
 * victim cache can hold. This is where dynamic exclusion is most
 * effective." Also checks the stream-buffer composition claim.
 */

#include "bench_common.h"
#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"
#include "util/stats.h"
#include "cache/stream_buffer.h"
#include "cache/victim.h"

namespace
{

double
missPct(dynex::CacheModel &cache, const dynex::Trace &trace)
{
    return 100.0 * dynex::runTrace(cache, trace).missRate();
}

} // namespace

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "ablation_victim",
        "Victim cache vs dynamic exclusion (32KB, b=16B)",
        "victim caches absorb the few conflicting data items; "
        "instruction conflicts overflow them, where dynamic exclusion "
        "is most effective");

    report.table().setHeader({"stream", "direct-mapped %", "victim-4 %",
                              "dynamic-exclusion %", "de + stream4 %"});

    const auto geo = CacheGeometry::directMapped(kCacheBytes, kLine16);
    DynamicExclusionConfig de_config;
    de_config.useLastLine = true;

    double i_dm = 0, i_victim = 0, i_de = 0, i_stream = 0;
    double d_dm = 0, d_victim = 0, d_de = 0, d_stream = 0;
    for (const auto &name : suiteNames()) {
        for (const bool data_stream : {false, true}) {
            const auto trace =
                data_stream ? Workloads::data(name, refs() / 2)
                            : Workloads::instructions(name, refs());

            DirectMappedCache dm(geo);
            VictimCache victim(geo, 4);
            DynamicExclusionCache de(geo, de_config);
            StreamBufferCache de_stream(
                std::make_unique<DynamicExclusionCache>(geo, de_config),
                4);

            const double dm_pct = missPct(dm, *trace);
            const double victim_pct = missPct(victim, *trace);
            const double de_pct = missPct(de, *trace);
            const double stream_pct = missPct(de_stream, *trace);
            if (data_stream) {
                d_dm += dm_pct;
                d_victim += victim_pct;
                d_de += de_pct;
                d_stream += stream_pct;
            } else {
                i_dm += dm_pct;
                i_victim += victim_pct;
                i_de += de_pct;
                i_stream += stream_pct;
            }
        }
    }
    for (double *total : {&i_dm, &i_victim, &i_de, &i_stream, &d_dm,
                          &d_victim, &d_de, &d_stream})
        *total /= 10.0;

    report.table().addRow({"instruction", Table::fmt(i_dm, 3),
                           Table::fmt(i_victim, 3), Table::fmt(i_de, 3),
                           Table::fmt(i_stream, 3)});
    report.table().addRow({"data", Table::fmt(d_dm, 3),
                           Table::fmt(d_victim, 3), Table::fmt(d_de, 3),
                           Table::fmt(d_stream, 3)});

    const double victim_i_gain = percentReduction(i_dm, i_victim);
    const double victim_d_gain = percentReduction(d_dm, d_victim);
    const double de_i_gain = percentReduction(i_dm, i_de);

    report.note("victim gain: instructions " +
                Table::fmt(victim_i_gain, 1) + "%, data " +
                Table::fmt(victim_d_gain, 1) + "%; de instruction gain " +
                Table::fmt(de_i_gain, 1) + "%");
    report.verdict(de_i_gain > victim_i_gain,
                   "on instruction streams dynamic exclusion beats a "
                   "small victim cache (too many conflicting items)");
    report.verdict(victim_d_gain >= percentReduction(d_dm, d_de) - 2.0,
                   "on data streams the victim cache is at least "
                   "competitive with dynamic exclusion");
    report.verdict(i_stream <= i_de + 1e-9,
                   "a stream buffer composes with dynamic exclusion "
                   "(prefetching is complementary)");
    report.finish();
    return report.exitCode();
}
