/**
 * @file
 * Google-benchmark A/B of the serving path's telemetry cost: one
 * in-process server + loopback client pair per variant, measuring the
 * full request round-trip with telemetry on (latency histograms,
 * request spans tagged per frame) and off. Ping is the smallest DXP1
 * request, so the per-request bookkeeping cost is the largest fraction
 * of the measurement — the worst case for the <=2% overhead gate
 * BENCH_sweep.json records.
 */

#include <benchmark/benchmark.h>

#include <cstdint>

#include "server/client.h"
#include "server/server.h"
#include "util/logging.h"

namespace
{

using namespace dynex;
using namespace dynex::server;

void
pingLoop(benchmark::State &state, bool telemetry)
{
    ServerConfig config;
    config.workers = 1;
    config.refs = 20000;
    config.traces.push_back({"espresso", "", 0});
    config.telemetry = telemetry;
    Server server(std::move(config));
    if (!server.start().ok())
        DYNEX_FATAL("bench server failed to start");
    Client client;
    if (!client.connect("127.0.0.1", server.port()).ok())
        DYNEX_FATAL("bench client failed to connect");

    for (auto _ : state) {
        const Result<PingInfo> info = client.ping();
        if (!info.ok())
            DYNEX_FATAL("ping failed in bench");
        benchmark::DoNotOptimize(info.value().traces);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_ServeTelemetryOn(benchmark::State &state)
{
    pingLoop(state, true);
}

void
BM_ServeTelemetryOff(benchmark::State &state)
{
    pingLoop(state, false);
}

BENCHMARK(BM_ServeTelemetryOn)->UseRealTime();
BENCHMARK(BM_ServeTelemetryOff)->UseRealTime();

} // namespace

BENCHMARK_MAIN();
