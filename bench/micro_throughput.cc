/**
 * @file
 * Google-benchmark microbenchmarks of the simulator cores: accesses
 * per second for each cache model and the supporting machinery
 * (next-use indexing, trace generation).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"
#include "cache/optimal.h"
#include "cache/set_assoc.h"
#include "cache/victim.h"
#include "obs/metrics.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "trace/next_use.h"
#include "trace/trace_io.h"
#include "tracegen/spec.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace
{

using namespace dynex;

Trace
benchTrace(std::size_t refs)
{
    // A loopy synthetic stream resembling instruction traffic. The
    // inner loops emit whole loop bodies, so stop as soon as the
    // budget is met and truncate the overshoot: items-processed
    // accounting relies on the trace being exactly `refs` long.
    Rng rng(0xbe7c4);
    Trace trace("bench");
    trace.reserve(refs);
    while (trace.size() < refs) {
        const Addr base = 0x10000 + 4 * rng.nextBelow(32768);
        const int body = 4 + static_cast<int>(rng.nextBelow(24));
        const int iters = 1 + static_cast<int>(rng.nextBelow(6));
        for (int i = 0; i < iters && trace.size() < refs; ++i)
            for (int j = 0; j < body && trace.size() < refs; ++j)
                trace.append(ifetch(base + 4 * static_cast<Addr>(j)));
    }
    trace.mutableRecords().resize(refs);
    return trace;
}

const Trace &
sharedTrace()
{
    static const Trace trace = benchTrace(1 << 20);
    return trace;
}

template <typename MakeCache>
void
runCacheBenchmark(benchmark::State &state, MakeCache make_cache)
{
    const Trace &trace = sharedTrace();
    auto cache = make_cache();
    for (auto _ : state) {
        for (std::size_t i = 0; i < trace.size(); ++i)
            benchmark::DoNotOptimize(cache->access(trace[i], i));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_DirectMapped(benchmark::State &state)
{
    runCacheBenchmark(state, [] {
        return std::make_unique<DirectMappedCache>(
            CacheGeometry::directMapped(32 * 1024, 4));
    });
}
BENCHMARK(BM_DirectMapped);

void
BM_DynamicExclusion(benchmark::State &state)
{
    runCacheBenchmark(state, [] {
        return std::make_unique<DynamicExclusionCache>(
            CacheGeometry::directMapped(32 * 1024, 4));
    });
}
BENCHMARK(BM_DynamicExclusion);

void
BM_SetAssoc4Way(benchmark::State &state)
{
    runCacheBenchmark(state, [] {
        return std::make_unique<SetAssocCache>(
            CacheGeometry::setAssociative(32 * 1024, 4, 4));
    });
}
BENCHMARK(BM_SetAssoc4Way);

void
BM_VictimCache(benchmark::State &state)
{
    runCacheBenchmark(state, [] {
        return std::make_unique<VictimCache>(
            CacheGeometry::directMapped(32 * 1024, 4), 4);
    });
}
BENCHMARK(BM_VictimCache);

void
BM_OptimalCache(benchmark::State &state)
{
    const Trace &trace = sharedTrace();
    static const NextUseIndex index(trace, 4, NextUseMode::RunStart);
    OptimalDirectMappedCache cache(
        CacheGeometry::directMapped(32 * 1024, 4), index, true);
    for (auto _ : state) {
        for (std::size_t i = 0; i < trace.size(); ++i)
            benchmark::DoNotOptimize(cache.access(trace[i], i));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_OptimalCache);

void
BM_NextUseIndexBuild(benchmark::State &state)
{
    const Trace &trace = sharedTrace();
    for (auto _ : state) {
        NextUseIndex index(trace, 4, NextUseMode::RunStart);
        benchmark::DoNotOptimize(index.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_NextUseIndexBuild);

void
BM_NextUseBuild(benchmark::State &state)
{
    // The flat-hash backward pass with the scratch table reused across
    // builds — the per-(trace, line size) pattern of the sweeps.
    const Trace &trace = sharedTrace();
    NextUseScratch scratch;
    for (auto _ : state) {
        NextUseIndex index(trace, 4, NextUseMode::RunStart, &scratch);
        benchmark::DoNotOptimize(index.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_NextUseBuild);

void
BM_NextUseBuildMap(benchmark::State &state)
{
    // Baseline: the original unordered_map backward pass, kept as the
    // reference oracle. Compare against BM_NextUseBuild.
    const Trace &trace = sharedTrace();
    for (auto _ : state) {
        const auto next =
            nextUseByMap(trace, 4, NextUseMode::RunStart);
        benchmark::DoNotOptimize(next.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_NextUseBuildMap);

void
BM_ReplayVirtual(benchmark::State &state)
{
    // Replay through the CacheModel& interface: one virtual dispatch
    // per reference. Baseline for BM_ReplayTemplated.
    const Trace &trace = sharedTrace();
    DynamicExclusionCache cache(
        CacheGeometry::directMapped(32 * 1024, 4));
    CacheModel &model = cache;
    for (auto _ : state)
        benchmark::DoNotOptimize(runTrace(model, trace));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_ReplayVirtual);

void
BM_ReplayTemplated(benchmark::State &state)
{
    // The statically-dispatched fast path used by runTriad: the model
    // type is known, so doAccess devirtualizes and inlines.
    const Trace &trace = sharedTrace();
    DynamicExclusionCache cache(
        CacheGeometry::directMapped(32 * 1024, 4));
    for (auto _ : state)
        benchmark::DoNotOptimize(replayTrace(cache, trace));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_ReplayTemplated);

void
runSuiteSweepBenchmark(benchmark::State &state, ReplayEngine engine,
                       bool with_metrics = false)
{
    // The suite-average sweep fanned out over state.range(0) workers;
    // results are bit-identical across the axis and across engines,
    // only wall-clock changes. Small fixed budget keeps smoke fast.
    ThreadPool::setConfiguredWorkers(
        static_cast<unsigned>(state.range(0)));
    const std::vector<std::string> names = {"mat300", "tomcatv"};
    constexpr Count kRefs = 100000;
    std::unique_ptr<obs::MetricsCollector> collector;
    std::optional<obs::ScopedMetrics> install;
    if (with_metrics) {
        collector = std::make_unique<obs::MetricsCollector>();
        for (const std::string &name : names)
            for (const std::uint64_t size : paperCacheSizes())
                collector->addLeg(name + ".ifetch", size);
        install.emplace(collector.get());
    }
    for (auto _ : state) {
        const auto points =
            sweepSuiteAverage(names, kRefs, paperCacheSizes(), 4, {},
                              false, false, engine);
        benchmark::DoNotOptimize(points.back().deMissPct);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * names.size() * paperCacheSizes().size() *
        3 * kRefs));
    ThreadPool::setConfiguredWorkers(0);
}

void
BM_SuiteSweepParallel(benchmark::State &state)
{
    // Per-leg engine: one trace pass per (size, model) leg. Baseline
    // for BM_SweepBatched.
    runSuiteSweepBenchmark(state, ReplayEngine::PerLeg);
}
BENCHMARK(BM_SuiteSweepParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_SweepBatched(benchmark::State &state)
{
    // Batched engine: every model of the sweep consumes each packed
    // trace chunk while it is cache-resident — one trace pass per
    // benchmark instead of one per leg.
    runSuiteSweepBenchmark(state, ReplayEngine::Batched);
}
BENCHMARK(BM_SweepBatched)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_SweepBatchedMetricsOn(benchmark::State &state)
{
    // BM_SweepBatched with a metrics collector installed: bounds the
    // cost a --metrics-out run adds (per-chunk clock reads and slot
    // fills). The compiled-in-but-*disabled* cost — what every normal
    // sweep pays — is a few null checks per chunk; compare this
    // against BM_SweepBatched to see the *enabled* cost.
    runSuiteSweepBenchmark(state, ReplayEngine::Batched,
                           /*with_metrics=*/true);
}
BENCHMARK(BM_SweepBatchedMetricsOn)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_SweepKernel(benchmark::State &state)
{
    // SoA kernel: branchless table-driven FSM transitions over packed
    // tag/sticky/next-use lanes, stats derived from tallies at the end
    // of the pass instead of recorded per reference.
    runSuiteSweepBenchmark(state, ReplayEngine::Kernel);
}
BENCHMARK(BM_SweepKernel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/** One encoded image of the shared trace in @p format. */
const std::string &
encodedSharedTrace(TraceFormat format)
{
    static const std::string dxt2 = [] {
        std::ostringstream out;
        writeTrace(sharedTrace(), out, TraceFormat::Dxt2);
        return out.str();
    }();
    static const std::string dxt3 = [] {
        std::ostringstream out;
        writeTrace(sharedTrace(), out, TraceFormat::Dxt3);
        return out.str();
    }();
    return format == TraceFormat::Dxt3 ? dxt3 : dxt2;
}

void
runDecodeBenchmark(benchmark::State &state, TraceFormat format)
{
    const std::string &image = encodedSharedTrace(format);
    for (auto _ : state) {
        std::istringstream in(image);
        auto trace = readTrace(in);
        benchmark::DoNotOptimize(trace.value().size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * sharedTrace().size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * image.size()));
    state.counters["bytes_per_ref"] = benchmark::Counter(
        static_cast<double>(image.size()) /
        static_cast<double>(sharedTrace().size()));
}

void
BM_Dxt2Decode(benchmark::State &state)
{
    runDecodeBenchmark(state, TraceFormat::Dxt2);
}
BENCHMARK(BM_Dxt2Decode)->Unit(benchmark::kMillisecond);

void
BM_Dxt3Decode(benchmark::State &state)
{
    runDecodeBenchmark(state, TraceFormat::Dxt3);
}
BENCHMARK(BM_Dxt3Decode)->Unit(benchmark::kMillisecond);

void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        const Trace trace = makeSpecTrace("li", 200000);
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
