/**
 * @file
 * Extension ablation: dynamic exclusion applied at the L2 as well.
 * The paper improves the L2 indirectly (exclusive-style allocation
 * frees L2 frames); this extension additionally runs the FSM on L2
 * memory fills, protecting sticky L2 residents from thrash — the
 * natural next step the paper's conclusion gestures at.
 */

#include "bench_common.h"
#include "cache/hierarchy.h"
#include "util/stats.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "ablation_l2dynex",
        "Dynamic exclusion at the L2 (extension; L1=32KB, b=4B, "
        "hashed policy)",
        "running the FSM on L2 fills should reduce L2 global misses "
        "further, most visibly when the L2 is small");

    report.table().setHeader({"L2 size", "L2 global % (off)",
                              "L2 global % (on)", "reduction %",
                              "L1 delta pp"});

    bool never_hurts = true;
    bool l1_unharmed = true;
    for (const std::uint64_t ratio : {2ull, 4ull, 8ull, 16ull}) {
        double off_sum = 0, on_sum = 0, l1_off = 0, l1_on = 0;
        for (const auto &name : suiteNames()) {
            const auto trace = Workloads::instructions(name, refs());
            HierarchyConfig config;
            config.l1 = CacheGeometry::directMapped(kCacheBytes,
                                                    kWordLine);
            config.l2 = CacheGeometry::directMapped(kCacheBytes * ratio,
                                                    kWordLine);
            config.policy = HitLastPolicy::Hashed;

            TwoLevelCache off(config);
            const auto off_stats = runTrace(off, *trace);
            config.l2DynamicExclusion = true;
            TwoLevelCache on(config);
            const auto on_stats = runTrace(on, *trace);

            off_sum += 100.0 * off_stats.l2GlobalMissRate();
            on_sum += 100.0 * on_stats.l2GlobalMissRate();
            l1_off += 100.0 * off_stats.l1.missRate();
            l1_on += 100.0 * on_stats.l1.missRate();
        }
        off_sum /= 10;
        on_sum /= 10;
        l1_off /= 10;
        l1_on /= 10;

        report.table().addRow(
            {formatSize(kCacheBytes * ratio), Table::fmt(off_sum, 3),
             Table::fmt(on_sum, 3),
             Table::fmt(percentReduction(off_sum, on_sum), 1),
             Table::fmt(l1_on - l1_off, 3)});
        never_hurts = never_hurts && on_sum <= off_sum * 1.05 + 0.01;
        l1_unharmed = l1_unharmed && std::abs(l1_on - l1_off) < 0.05;
    }

    report.note("finding: on this suite the L2-level FSM buys little — "
                "the exclusive-style allocation the paper proposes "
                "already removes most L2 conflict pressure");
    report.verdict(never_hurts,
                   "the L2 FSM never materially hurts the L2 global "
                   "miss rate");
    report.verdict(l1_unharmed,
                   "the L1 behavior is essentially unchanged (hashed "
                   "hit-last bits live beside the L1)");
    report.finish();
    return report.exitCode();
}
