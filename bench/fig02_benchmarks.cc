/**
 * @file
 * Figure 2: the SPEC benchmarks used for evaluation — here, the
 * synthetic suite standing in for them, with the structural properties
 * that drive each benchmark's cache behavior.
 */

#include "bench_common.h"
#include "tracegen/executor.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig02", "SPEC benchmarks used for evaluation",
        "ten benchmarks: doduc, eqntott, espresso, fpppp, gcc, li, "
        "mat300, nasa7, spice, tomcatv");

    report.table().setHeader(
        {"benchmark", "description", "code", "pass refs", "ifetch%"});

    bool all_present = true;
    for (const auto &info : specSuite()) {
        auto program = makeSpecProgram(info.name);
        const Count pass = measurePassLength(*program, 1);
        const auto trace = Workloads::mixed(info.name, 200000);
        const TraceSummary summary = trace->summarize();
        report.table().addRow(
            {info.name, info.description,
             formatSize(program->codeFootprint()), std::to_string(pass),
             Table::fmt(100.0 * static_cast<double>(summary.ifetches) /
                            static_cast<double>(summary.total),
                        1)});
        all_present = all_present && !info.description.empty();
    }

    report.note("code = allocated code address span; pass refs = "
                "references per full phase cycle");
    report.verdict(report.table().rowCount() == 10 && all_present,
                   "all ten paper benchmarks are modeled");
    report.finish();
    return report.exitCode();
}
