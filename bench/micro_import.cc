/**
 * @file
 * Google-benchmark microbenchmarks of the workload importers: decode
 * throughput of the two external trace formats (line-oriented text
 * and the lackey-style 10-byte binary layout) over a pre-serialized
 * in-memory corpus, so the numbers isolate the hardened decoders from
 * filesystem noise. Counters report both references and input bytes
 * per second — the text decoder is parse-bound, the binary decoder
 * chunk-copy-bound, and a regression in either shows up as a drop in
 * its own bytes_per_second.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "trace/record.h"
#include "trace/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/import.h"

namespace
{

using namespace dynex;

/** A mixed instruction/data stream with varied access sizes, the
 * shape real imported traces have. */
Trace
corpusTrace(std::size_t refs)
{
    Rng rng(0x1992);
    Trace trace("import_bench");
    trace.reserve(refs);
    while (trace.size() < refs) {
        const Addr pc = 0x400000 + 4 * rng.nextBelow(65536);
        const int body = 3 + static_cast<int>(rng.nextBelow(12));
        for (int i = 0; i < body && trace.size() < refs; ++i) {
            trace.append(ifetch(pc + 4 * static_cast<Addr>(i)));
            if (trace.size() >= refs)
                break;
            const auto roll = rng.nextBelow(4);
            const auto size =
                static_cast<std::uint8_t>(1u << rng.nextBelow(4));
            const Addr data = 0x7fff0000 + 8 * rng.nextBelow(16384);
            if (roll == 0)
                trace.append(load(data, size));
            else if (roll == 1)
                trace.append(store(data, size));
        }
    }
    trace.mutableRecords().resize(refs);
    return trace;
}

const Trace &
sharedCorpus()
{
    static const Trace trace = corpusTrace(1 << 18);
    return trace;
}

/** The corpus serialized once in the text format. */
const std::string &
textCorpus()
{
    static const std::string bytes = [] {
        std::ostringstream out;
        if (!workload::writeTextTrace(sharedCorpus(), out).ok())
            DYNEX_FATAL("text corpus serialization failed in bench");
        return out.str();
    }();
    return bytes;
}

/** The corpus serialized once in the lackey binary layout. */
const std::string &
lackeyCorpus()
{
    static const std::string bytes = [] {
        std::ostringstream out;
        if (!workload::writeLackeyTrace(sharedCorpus(), out).ok())
            DYNEX_FATAL("lackey corpus serialization failed in bench");
        return out.str();
    }();
    return bytes;
}

template <typename Reader>
void
runImportBenchmark(benchmark::State &state, const std::string &bytes,
                   Reader read)
{
    const std::size_t refs = sharedCorpus().size();
    for (auto _ : state) {
        std::istringstream in(bytes);
        Result<Trace> trace = read(in);
        if (!trace.ok() || trace.value().size() != refs)
            DYNEX_FATAL("import decode failed in bench");
        benchmark::DoNotOptimize(trace.value());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * refs));
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * bytes.size()));
}

void
BM_ImportText(benchmark::State &state)
{
    runImportBenchmark(state, textCorpus(), [](std::istream &in) {
        return workload::readTextTrace(in, "bench");
    });
}
BENCHMARK(BM_ImportText)->Unit(benchmark::kMillisecond);

void
BM_ImportLackey(benchmark::State &state)
{
    runImportBenchmark(state, lackeyCorpus(), [](std::istream &in) {
        return workload::readLackeyTrace(in, "bench");
    });
}
BENCHMARK(BM_ImportLackey)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
