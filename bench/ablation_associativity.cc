/**
 * @file
 * Ablation: the paper's motivating trade-off (Section 1). Set-
 * associative caches miss less but cycle slower; direct-mapped caches
 * are fast but conflict-prone. Dynamic exclusion aims to recover much
 * of the associativity miss-rate gap at direct-mapped access time.
 */

#include "bench_common.h"
#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"
#include "cache/set_assoc.h"
#include "util/stats.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "ablation_associativity",
        "Dynamic exclusion vs associativity (32KB, b=16B)",
        "Section 1: set-associative caches have lower miss rates; "
        "dynamic exclusion recovers much of that gap without the "
        "slower access path");

    report.table().setHeader({"benchmark", "direct-mapped %", "2-way %",
                              "4-way %", "dynamic-exclusion %"});

    const auto geo = CacheGeometry::directMapped(kCacheBytes, kLine16);
    DynamicExclusionConfig de_config;
    de_config.useLastLine = true;

    double dm_avg = 0, w2_avg = 0, w4_avg = 0, de_avg = 0;
    for (const auto &name : suiteNames()) {
        const auto trace = Workloads::instructions(name, refs());

        DirectMappedCache dm(geo);
        SetAssocCache w2(
            CacheGeometry::setAssociative(kCacheBytes, kLine16, 2));
        SetAssocCache w4(
            CacheGeometry::setAssociative(kCacheBytes, kLine16, 4));
        DynamicExclusionCache de(geo, de_config);

        const double dm_pct = 100.0 * runTrace(dm, *trace).missRate();
        const double w2_pct = 100.0 * runTrace(w2, *trace).missRate();
        const double w4_pct = 100.0 * runTrace(w4, *trace).missRate();
        const double de_pct = 100.0 * runTrace(de, *trace).missRate();

        report.table().addRow({name, Table::fmt(dm_pct, 3),
                               Table::fmt(w2_pct, 3),
                               Table::fmt(w4_pct, 3),
                               Table::fmt(de_pct, 3)});
        dm_avg += dm_pct;
        w2_avg += w2_pct;
        w4_avg += w4_pct;
        de_avg += de_pct;
    }
    dm_avg /= 10;
    w2_avg /= 10;
    w4_avg /= 10;
    de_avg /= 10;

    const double gap = dm_avg - w2_avg;
    const double recovered = dm_avg - de_avg;
    report.note("suite averages: dm " + Table::fmt(dm_avg, 3) +
                "%, 2-way " + Table::fmt(w2_avg, 3) + "%, 4-way " +
                Table::fmt(w4_avg, 3) + "%, dynamic exclusion " +
                Table::fmt(de_avg, 3) + "%");
    report.note("of the " + Table::fmt(gap, 3) +
                "pp direct-mapped-to-2-way gap, dynamic exclusion "
                "recovers " + Table::fmt(recovered, 3) + "pp");
    report.verdict(w2_avg < dm_avg,
                   "2-way associativity beats direct-mapped on misses "
                   "(the premise)");
    report.verdict(gap > 0 && recovered > 0.4 * gap,
                   "dynamic exclusion recovers a large share of the "
                   "2-way gap at direct-mapped access time");
    report.finish();
    return report.exitCode();
}
