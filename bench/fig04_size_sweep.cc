/**
 * @file
 * Figure 4: average instruction-cache miss rate across the suite for
 * cache sizes 1KB-128KB at 4-byte lines, for the conventional
 * direct-mapped, dynamic-exclusion, and optimal caches.
 */

#include "bench_common.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig04",
        "Average instruction-cache miss rate vs cache size (b=4B)",
        "all three curves fall with size; dynamic exclusion tracks "
        "between conventional and optimal");

    report.table().setHeader(
        {"cache", "direct-mapped %", "dynamic-exclusion %", "optimal %"});

    const auto points = sweepSuiteAverage(suiteNames(), refs(),
                                          paperCacheSizes(), kWordLine);

    bool bounded = true;
    bool shrinking = true;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        report.table().addRow({formatSize(p.sizeBytes),
                               Table::fmt(p.dmMissPct, 3),
                               Table::fmt(p.deMissPct, 3),
                               Table::fmt(p.optMissPct, 3)});
        bounded = bounded && p.optMissPct <= p.dmMissPct + 1e-9 &&
                  p.optMissPct <= p.deMissPct + 1e-9;
        if (i > 0)
            shrinking = shrinking &&
                p.dmMissPct <= points[i - 1].dmMissPct + 0.05;
    }

    report.verdict(bounded,
                   "optimal lower-bounds both other curves at every "
                   "size");
    report.verdict(shrinking,
                   "the conventional curve falls (or stays flat) with "
                   "cache size");
    report.finish();
    return report.exitCode();
}
