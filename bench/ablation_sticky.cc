/**
 * @file
 * Ablation: sticky-counter depth (the WRL TN-22 multiple-sticky-bit
 * extension the paper discusses for the (abc)^n pattern).
 *
 * Paper: extra sticky bits can lock a line through three-way
 * conflicts, but "produce mixed results because additional startup
 * time is required and because the miss rate for other patterns
 * increases".
 */

#include "bench_common.h"
#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"

namespace
{

/** Misses of a dynamic-exclusion cache on a symbolic pattern. */
dynex::Count
patternMisses(const std::string &pattern, std::uint8_t sticky_max)
{
    using namespace dynex;
    DynamicExclusionConfig config;
    config.stickyMax = sticky_max;
    DynamicExclusionCache cache(CacheGeometry::directMapped(64, 4),
                                config);
    const Trace trace = Trace::fromPattern(pattern, 0x1000, 64);
    return runTrace(cache, trace).misses;
}

std::string
repeatGroup(const std::string &group, int times)
{
    std::string out;
    for (int i = 0; i < times; ++i)
        out += group;
    return out;
}

} // namespace

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "ablation_sticky",
        "Sticky-counter depth on canonical patterns and the suite",
        "depth 2 rescues (abc)^n; deeper counters slow phase changes "
        "(mixed results, as the paper warns)");

    report.table().setHeader({"workload", "sticky=1", "sticky=2",
                              "sticky=3", "sticky=4"});

    const std::string abc = repeatGroup("abc", 60);
    const std::string phases =
        repeatGroup(repeatGroup("a", 10) + repeatGroup("b", 10), 10);

    report.table().addRow(
        {"(abc)^60 misses", std::to_string(patternMisses(abc, 1)),
         std::to_string(patternMisses(abc, 2)),
         std::to_string(patternMisses(abc, 3)),
         std::to_string(patternMisses(abc, 4))});
    report.table().addRow(
        {"(a^10 b^10)^10 misses",
         std::to_string(patternMisses(phases, 1)),
         std::to_string(patternMisses(phases, 2)),
         std::to_string(patternMisses(phases, 3)),
         std::to_string(patternMisses(phases, 4))});

    // Suite-average miss rates at the canonical configuration.
    std::vector<double> suite_miss(4, 0.0);
    for (const auto &name : suiteNames()) {
        const auto trace = Workloads::instructions(name, refs());
        for (std::uint8_t depth = 1; depth <= 4; ++depth) {
            DynamicExclusionConfig config;
            config.stickyMax = depth;
            DynamicExclusionCache cache(
                CacheGeometry::directMapped(kCacheBytes, kWordLine),
                config);
            suite_miss[depth - 1] +=
                100.0 * runTrace(cache, *trace).missRate();
        }
    }
    std::vector<std::string> row{"suite avg miss % (32KB/4B)"};
    for (double &value : suite_miss) {
        value /= 10.0;
        row.push_back(Table::fmt(value, 3));
    }
    report.table().addRow(row);

    report.verdict(patternMisses(abc, 2) < patternMisses(abc, 1),
                   "a second sticky level rescues the three-way "
                   "conflict pattern");
    report.verdict(patternMisses(phases, 4) > patternMisses(phases, 1),
                   "deeper counters pay extra training on phase "
                   "changes");
    report.verdict(std::abs(suite_miss[1] - suite_miss[0]) <
                       0.3 * suite_miss[0] + 0.05,
                   "on the suite the depths are close (mixed results, "
                   "per the paper)");
    report.finish();
    return report.exitCode();
}
