/**
 * @file
 * Ablation: the last-line buffer at multi-instruction lines
 * (Section 6). Without it, per-word FSM updates stop the machine from
 * excluding lines and bypassed lines miss on every sequential word.
 */

#include "bench_common.h"
#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"
#include "cache/exclusion_stream.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "ablation_lastline",
        "Dynamic exclusion with vs without the last-line buffer "
        "(S=32KB, b=16B)",
        "Section 6: naive per-word operation at long lines forfeits "
        "the benefit; the last-line buffer restores it");

    report.table().setHeader({"benchmark", "direct-mapped %",
                              "de naive %", "de + last-line %",
                              "de + stream4 %"});

    double with_buffer_total = 0.0, naive_total = 0.0, dm_total = 0.0,
           stream_total = 0.0;
    for (const auto &name : suiteNames()) {
        const auto trace = Workloads::instructions(name, refs());

        DirectMappedCache dm(
            CacheGeometry::directMapped(kCacheBytes, kLine16));
        const double dm_pct = 100.0 * runTrace(dm, *trace).missRate();

        DynamicExclusionConfig buffered;
        buffered.useLastLine = true;
        DynamicExclusionCache with_buffer(
            CacheGeometry::directMapped(kCacheBytes, kLine16), buffered);
        const double buf_pct =
            100.0 * runTrace(with_buffer, *trace).missRate();

        DynamicExclusionConfig raw;
        raw.useLastLine = false;
        DynamicExclusionCache naive(
            CacheGeometry::directMapped(kCacheBytes, kLine16), raw);
        const double naive_pct =
            100.0 * runTrace(naive, *trace).missRate();

        ExclusionStreamCache scheme3(
            CacheGeometry::directMapped(kCacheBytes, kLine16), 4);
        const double stream_pct =
            100.0 * runTrace(scheme3, *trace).missRate();

        report.table().addRow({name, Table::fmt(dm_pct, 3),
                               Table::fmt(naive_pct, 3),
                               Table::fmt(buf_pct, 3),
                               Table::fmt(stream_pct, 3)});
        dm_total += dm_pct;
        with_buffer_total += buf_pct;
        naive_total += naive_pct;
        stream_total += stream_pct;
    }

    report.note("suite averages: dm " + Table::fmt(dm_total / 10, 3) +
                "%, naive " + Table::fmt(naive_total / 10, 3) +
                "%, last-line " + Table::fmt(with_buffer_total / 10, 3) +
                "%, stream " + Table::fmt(stream_total / 10, 3) + "%");
    report.verdict(with_buffer_total < dm_total,
                   "with the buffer, dynamic exclusion beats "
                   "direct-mapped at 16B lines");
    report.verdict(with_buffer_total < naive_total,
                   "the last-line buffer is what makes long lines "
                   "work (naive per-word updates are worse)");
    report.verdict(stream_total <= with_buffer_total + 0.01,
                   "scheme 3 (stream-buffer residence) matches or "
                   "beats scheme 2 by adding prefetch coverage");
    report.finish();
    return report.exitCode();
}
