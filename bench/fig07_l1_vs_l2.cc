/**
 * @file
 * Figure 7: dynamic-exclusion L1 miss rate for the three hit-last
 * storage options as the (relative) L2 size grows, at L1=32KB, b=4B.
 *
 * Paper: assume-hit has slightly fewer L1 misses for most sizes but
 * degenerates to conventional behavior when L2 == L1; most of the
 * performance is reached once L2 >= 4x L1 (equivalently, four hashed
 * hit-last bits per L1 line suffice).
 */

#include "hierarchy_sweep.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig07",
        "Dynamic-exclusion L1 miss rate vs relative L2 size "
        "(L1=32KB, b=4B)",
        "assume-hit degenerates at ratio 1; all options near-ideal by "
        "ratio 4");

    report.table().setHeader({"L2/L1", "conventional %", "assume-hit %",
                              "assume-miss %", "hashed %", "ideal %"});

    const auto rows = hierarchySweep();
    bool degenerate_at_one = false;
    bool near_ideal_at_four = true;
    int assume_hit_best = 0;
    for (const auto &row : rows) {
        report.table().addRow({std::to_string(row.ratio),
                               Table::fmt(row.l1Dm, 3),
                               Table::fmt(row.l1AssumeHit, 3),
                               Table::fmt(row.l1AssumeMiss, 3),
                               Table::fmt(row.l1Hashed, 3),
                               Table::fmt(row.l1Ideal, 3)});
        if (row.ratio == 1) {
            degenerate_at_one =
                std::abs(row.l1AssumeHit - row.l1Dm) < 0.15 * row.l1Dm;
        }
        if (row.ratio >= 4) {
            const double budget =
                row.l1Ideal + 0.35 * (row.l1Dm - row.l1Ideal);
            near_ideal_at_four = near_ideal_at_four &&
                row.l1AssumeHit <= budget &&
                row.l1AssumeMiss <= budget && row.l1Hashed <= budget;
        }
        if (row.ratio >= 2 &&
            row.l1AssumeHit <=
                std::min(row.l1AssumeMiss, row.l1Hashed) + 0.01) {
            ++assume_hit_best;
        }
    }

    report.verdict(degenerate_at_one,
                   "assume-hit with L2 == L1 degenerates to "
                   "conventional direct-mapped behavior");
    report.verdict(near_ideal_at_four,
                   "all three options capture most of the ideal gain "
                   "once the ratio reaches 4 (paper's four bits/line)");
    report.verdict(assume_hit_best >= 3,
                   "assume-hit has slightly the fewest L1 misses for "
                   "most L2 sizes (paper: assuming instructions will "
                   "hit is usually correct)");
    report.finish();
    return report.exitCode();
}
