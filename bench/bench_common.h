/**
 * @file
 * Shared plumbing for the per-figure bench binaries: suite iteration,
 * reference budgets, and the canonical cache parameters of the paper's
 * evaluation (reconstructed from the OCR scan; see DESIGN.md).
 */

#ifndef DYNEX_BENCH_BENCH_COMMON_H
#define DYNEX_BENCH_BENCH_COMMON_H

#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "sim/workloads.h"
#include "tracegen/spec.h"
#include "util/string_utils.h"
#include "util/table.h"

namespace dynex::bench
{

/** The paper's canonical L1 instruction-cache size (32KB). */
inline constexpr std::uint64_t kCacheBytes = 32 * 1024;

/** One instruction per line (the paper's b=4B configuration). */
inline constexpr std::uint32_t kWordLine = 4;

/** The paper's headline line size for the abstract's 33% claim. */
inline constexpr std::uint32_t kLine16 = 16;

/** Names of the ten suite benchmarks, in the paper's order. */
inline std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &info : specSuite())
        names.push_back(info.name);
    return names;
}

/** Per-benchmark reference budget (DYNEX_REFS env overrides). */
inline Count
refs()
{
    return Workloads::defaultRefs();
}

} // namespace dynex::bench

#endif // DYNEX_BENCH_BENCH_COMMON_H
