/**
 * @file
 * Figure 5: percentage reduction of the suite-average miss rate vs
 * cache size (b=4B) for dynamic exclusion and the optimal cache.
 *
 * Paper: the improvement peaks at ~37% at 32KB and shrinks for very
 * small caches (multi-instruction conflicts defeat the FSM) and very
 * large caches (the programs fit).
 */

#include <algorithm>

#include "bench_common.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig05",
        "Instruction-cache miss-rate improvement vs cache size (b=4B)",
        "dynamic exclusion peaks near 37% in the mid sizes; optimal "
        "is higher; both decline toward very small and very large "
        "caches");

    report.table().setHeader(
        {"cache", "dynamic-exclusion gain %", "optimal gain %"});

    const auto points = sweepSuiteAverage(suiteNames(), refs(),
                                          paperCacheSizes(), kWordLine);

    double peak_de = 0.0;
    std::uint64_t peak_size = 0;
    double de_at_128k = 0.0;
    double de_at_1k = 0.0;
    bool de_below_opt = true;
    for (const auto &p : points) {
        const double de_gain = p.deImprovementPct();
        const double opt_gain = p.optImprovementPct();
        report.table().addRow({formatSize(p.sizeBytes),
                               Table::fmt(de_gain, 1),
                               Table::fmt(opt_gain, 1)});
        if (de_gain > peak_de) {
            peak_de = de_gain;
            peak_size = p.sizeBytes;
        }
        if (p.sizeBytes == 128 * 1024)
            de_at_128k = de_gain;
        if (p.sizeBytes == 1024)
            de_at_1k = de_gain;
        de_below_opt = de_below_opt && de_gain <= opt_gain + 1e-9;
    }

    report.note("peak dynamic-exclusion gain: " +
                Table::fmt(peak_de, 1) + "% at " + formatSize(peak_size) +
                " (paper: ~37% at 32KB)");

    report.verdict(peak_de >= 20.0,
                   "peak improvement is substantial (>=20%; paper 37%)");
    report.verdict(peak_size >= 8 * 1024 && peak_size <= 64 * 1024,
                   "the peak falls in the mid cache sizes (paper 32KB)");
    report.verdict(de_at_128k < peak_de && de_at_1k < peak_de,
                   "improvement declines toward both ends of the size "
                   "axis");
    report.verdict(de_below_opt,
                   "dynamic exclusion never exceeds the optimal bound");
    report.finish();
    return report.exitCode();
}
