/**
 * @file
 * Figure 14: dynamic exclusion applied to the suite's data reference
 * streams at 4B lines.
 *
 * Paper: a small improvement at small cache sizes, and slightly WORSE
 * performance than direct-mapped at larger sizes — data reference
 * patterns differ from instruction patterns and a conventional
 * direct-mapped cache is already closer to optimal on them.
 */

#include "bench_common.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig14", "Data-cache dynamic exclusion vs cache size (b=4B)",
        "small gain at small sizes; slightly worse than direct-mapped "
        "at large sizes; less headroom than instruction caches");

    report.table().setHeader({"cache", "direct-mapped %",
                              "dynamic-exclusion %", "optimal %",
                              "de gain %"});

    const auto points =
        sweepSuiteAverage(suiteNames(), refs(), paperCacheSizes(),
                          kWordLine, {}, /*data_refs=*/true);

    double gain_small_max = 0.0;
    double gain_sum = 0.0;
    bool opt_bounds = true;
    for (const auto &p : points) {
        report.table().addRow({formatSize(p.sizeBytes),
                               Table::fmt(p.dmMissPct, 3),
                               Table::fmt(p.deMissPct, 3),
                               Table::fmt(p.optMissPct, 3),
                               Table::fmt(p.deImprovementPct(), 1)});
        if (p.sizeBytes <= 4 * 1024)
            gain_small_max =
                std::max(gain_small_max, p.deImprovementPct());
        gain_sum += p.deImprovementPct();
        opt_bounds = opt_bounds && p.optMissPct <= p.deMissPct + 1e-9 &&
                     p.optMissPct <= p.dmMissPct + 1e-9;
    }
    const double gain_avg = gain_sum / static_cast<double>(points.size());

    report.note("known deviation: the paper's slight degradation at "
                "large data caches is not reproduced — the synthetic "
                "data streams keep loop structure that real data "
                "references lack (see EXPERIMENTS.md)");
    report.verdict(opt_bounds, "optimal bounds both policies");
    report.verdict(gain_small_max < 6.0,
                   "small data caches see only a small improvement "
                   "(capacity-dominated misses)");
    report.verdict(gain_avg < 12.0,
                   "data caches benefit far less than instruction "
                   "caches overall (paper: less potential to help)");
    report.finish();
    return report.exitCode();
}
