/**
 * @file
 * Figure 12: instruction-cache miss-rate improvement vs cache size at
 * 16-byte lines (the abstract's headline configuration: ~33% average
 * reduction at 32KB with 16B lines).
 */

#include "bench_common.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig12",
        "Instruction-cache improvement vs cache size (b=16B)",
        "abstract: ~33% average miss-rate reduction at 32KB with 16B "
        "lines; peak in the mid sizes");

    report.table().setHeader({"cache", "direct-mapped %",
                              "dynamic-exclusion %", "optimal %",
                              "de gain %"});

    DynamicExclusionConfig config;
    config.useLastLine = true;
    const auto points = sweepSuiteAverage(suiteNames(), refs(),
                                          paperCacheSizes(), kLine16,
                                          config);

    double gain_at_32k = 0.0;
    double peak = 0.0;
    for (const auto &p : points) {
        report.table().addRow({formatSize(p.sizeBytes),
                               Table::fmt(p.dmMissPct, 3),
                               Table::fmt(p.deMissPct, 3),
                               Table::fmt(p.optMissPct, 3),
                               Table::fmt(p.deImprovementPct(), 1)});
        if (p.sizeBytes == kCacheBytes)
            gain_at_32k = p.deImprovementPct();
        peak = std::max(peak, p.deImprovementPct());
    }

    report.note("gain at 32KB: " + Table::fmt(gain_at_32k, 1) +
                "% (paper abstract: ~33%)");
    report.verdict(gain_at_32k >= 15.0,
                   "a strong average reduction holds at 32KB/16B "
                   "(paper: 33%)");
    report.verdict(peak >= gain_at_32k,
                   "the peak is at or above the 32KB point");
    report.finish();
    return report.exitCode();
}
