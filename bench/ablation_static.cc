/**
 * @file
 * Ablation: static (profile-guided) exclusion vs dynamic exclusion —
 * the Section 2 contrast with the compiler-based approach of
 * [McF89, McF91b]. The static profile here is idealized (it is
 * derived from the very trace it is evaluated on, using the optimal
 * cache's bypass votes), yet the FSM adapts per phase where a fixed
 * exclusion set cannot, and needs no profile at all.
 */

#include "bench_common.h"
#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"
#include "cache/static_exclusion.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "ablation_static",
        "Profile-guided static exclusion vs dynamic exclusion "
        "(32KB, b=4B)",
        "Section 2: reordering/exclusion by profile works but needs "
        "compiler support and frequency data; the hardware FSM does "
        "not");

    report.table().setHeader({"benchmark", "direct-mapped %",
                              "static-exclusion %",
                              "dynamic-exclusion %", "excluded blocks"});

    const auto geo = CacheGeometry::directMapped(kCacheBytes, kWordLine);

    double dm_sum = 0, st_sum = 0, de_sum = 0;
    for (const auto &name : suiteNames()) {
        const auto trace = Workloads::instructions(name, refs());

        DirectMappedCache dm(geo);
        const double dm_pct = 100.0 * runTrace(dm, *trace).missRate();

        const ExclusionProfile profile =
            ExclusionProfile::fromOptimalBypasses(*trace, geo);
        StaticExclusionCache fixed(geo, profile);
        const double st_pct =
            100.0 * runTrace(fixed, *trace).missRate();

        DynamicExclusionCache de(geo);
        const double de_pct = 100.0 * runTrace(de, *trace).missRate();

        report.table().addRow({name, Table::fmt(dm_pct, 3),
                               Table::fmt(st_pct, 3),
                               Table::fmt(de_pct, 3),
                               std::to_string(profile.size())});
        dm_sum += dm_pct;
        st_sum += st_pct;
        de_sum += de_pct;
    }
    dm_sum /= 10;
    st_sum /= 10;
    de_sum /= 10;

    report.note("suite averages: dm " + Table::fmt(dm_sum, 3) +
                "%, static " + Table::fmt(st_sum, 3) + "%, dynamic " +
                Table::fmt(de_sum, 3) + "%");
    report.verdict(st_sum < dm_sum,
                   "an idealized static profile does reduce misses "
                   "(the compiler approach works)");
    report.verdict(de_sum < dm_sum,
                   "the hardware FSM reduces misses without any "
                   "profile or compiler support");
    report.verdict(de_sum < st_sum + 0.35,
                   "dynamic exclusion is competitive with (or better "
                   "than) the idealized static profile");
    report.finish();
    return report.exitCode();
}
