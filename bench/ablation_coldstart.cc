/**
 * @file
 * Ablation: cold-start vs steady state. The paper attributes the
 * small nasa7/tomcatv regressions to "a small increase in cold-start
 * misses while the dynamic exclusion state bits are initialized" and
 * notes that on full-length streams the increase is negligible. This
 * bench splits every benchmark's run at a warmup boundary and
 * compares steady-state behavior.
 */

#include "bench_common.h"
#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"
#include "sim/analysis.h"
#include "util/stats.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "ablation_coldstart",
        "Cold-start vs steady-state dynamic exclusion (32KB, b=4B, "
        "25% warmup)",
        "the FSM's training cost is a one-time effect; steady-state "
        "gains exceed whole-run gains");

    report.table().setHeader({"benchmark", "dm steady %", "de steady %",
                              "steady gain %", "whole-run gain %"});

    const auto geo = CacheGeometry::directMapped(kCacheBytes, kWordLine);

    double steady_gain_sum = 0.0, total_gain_sum = 0.0;
    bool kernels_clean = true;
    for (const auto &name : suiteNames()) {
        const auto trace = Workloads::instructions(name, refs());

        DirectMappedCache dm(geo);
        const WarmSplit dm_split = runTraceSplit(dm, *trace, 0.25);

        DynamicExclusionCache de(geo);
        const WarmSplit de_split = runTraceSplit(de, *trace, 0.25);

        const double steady_gain = percentReduction(
            dm_split.steady.missRate(), de_split.steady.missRate());
        const double total_gain = percentReduction(
            dm.stats().missRate(), de.stats().missRate());

        report.table().addRow(
            {name, Table::fmt(100.0 * dm_split.steady.missRate(), 3),
             Table::fmt(100.0 * de_split.steady.missRate(), 3),
             Table::fmt(steady_gain, 1), Table::fmt(total_gain, 1)});
        steady_gain_sum += steady_gain;
        total_gain_sum += total_gain;

        if (name == "nasa7" || name == "tomcatv" || name == "mat300") {
            kernels_clean = kernels_clean &&
                de_split.steady.missRate() <=
                    dm_split.steady.missRate() + 1e-6;
        }
    }

    report.note("suite average gain: steady " +
                Table::fmt(steady_gain_sum / 10, 1) + "% vs whole-run " +
                Table::fmt(total_gain_sum / 10, 1) + "%");
    report.verdict(steady_gain_sum >= total_gain_sum,
                   "steady-state gains exceed whole-run gains (training "
                   "is a one-time cost)");
    report.verdict(kernels_clean,
                   "the kernels' cold-start penalty disappears in "
                   "steady state (paper: negligible on full streams)");
    report.finish();
    return report.exitCode();
}
