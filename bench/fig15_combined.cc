/**
 * @file
 * Figure 15: dynamic exclusion on combined instruction+data caches at
 * 4B lines.
 *
 * Paper: for smaller caches the improvement is nearly as large as for
 * instruction caches (instruction references dominate the misses
 * there); for large caches, where data references dominate, the
 * improvement is smaller.
 */

#include "bench_common.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig15",
        "Combined I+D cache dynamic exclusion vs cache size (b=4B)",
        "strong improvement at small sizes (instruction misses "
        "dominate), smaller at large sizes (data dominates)");

    report.table().setHeader({"cache", "direct-mapped %",
                              "dynamic-exclusion %", "optimal %",
                              "de gain %"});

    const auto points = sweepSuiteAverage(
        suiteNames(), refs(), paperCacheSizes(), kWordLine, {},
        /*data_refs=*/false, /*mixed_refs=*/true);

    double best_small = 0.0;
    double gain_large = 0.0;
    for (const auto &p : points) {
        report.table().addRow({formatSize(p.sizeBytes),
                               Table::fmt(p.dmMissPct, 3),
                               Table::fmt(p.deMissPct, 3),
                               Table::fmt(p.optMissPct, 3),
                               Table::fmt(p.deImprovementPct(), 1)});
        if (p.sizeBytes <= 32 * 1024)
            best_small = std::max(best_small, p.deImprovementPct());
        if (p.sizeBytes == 128 * 1024)
            gain_large = p.deImprovementPct();
    }

    report.verdict(best_small > 10.0,
                   "combined caches see a solid improvement at small "
                   "to mid sizes");
    report.verdict(gain_large <= best_small,
                   "the improvement shrinks once data references "
                   "dominate (large caches)");
    report.finish();
    return report.exitCode();
}
