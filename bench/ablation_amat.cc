/**
 * @file
 * Ablation: average memory access time (the paper's Section 1 frame).
 * Set-associative caches pay extra hit-path cycles for their lower
 * miss rates [Hil87, Prz88]; dynamic exclusion reduces misses at
 * direct-mapped hit time, so it should win the AMAT comparison at
 * realistic penalties.
 */

#include "bench_common.h"
#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"
#include "cache/set_assoc.h"
#include "sim/timing.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "ablation_amat",
        "Average memory access time: direct-mapped vs 2-way vs dynamic "
        "exclusion (32KB, b=16B)",
        "Section 1: direct-mapped wins overall via faster hits; "
        "dynamic exclusion keeps that hit time and removes conflict "
        "misses");

    report.table().setHeader({"benchmark", "dm amat", "2-way amat",
                              "dynex amat"});

    const TimingModel dm_timing = DefaultTimings::directMapped();
    const TimingModel sa_timing = DefaultTimings::setAssociative();

    const auto geo = CacheGeometry::directMapped(kCacheBytes, kLine16);
    DynamicExclusionConfig de_config;
    de_config.useLastLine = true;

    double dm_sum = 0, sa_sum = 0, de_sum = 0;
    for (const auto &name : suiteNames()) {
        const auto trace = Workloads::instructions(name, refs());

        DirectMappedCache dm(geo);
        SetAssocCache sa(
            CacheGeometry::setAssociative(kCacheBytes, kLine16, 2));
        DynamicExclusionCache de(geo, de_config);

        const double dm_amat = dm_timing.amat(runTrace(dm, *trace));
        const double sa_amat = sa_timing.amat(runTrace(sa, *trace));
        const double de_amat = dm_timing.amat(runTrace(de, *trace));

        report.table().addRow({name, Table::fmt(dm_amat, 4),
                               Table::fmt(sa_amat, 4),
                               Table::fmt(de_amat, 4)});
        dm_sum += dm_amat;
        sa_sum += sa_amat;
        de_sum += de_amat;
    }
    dm_sum /= 10;
    sa_sum /= 10;
    de_sum /= 10;

    report.note("suite AMAT (cycles): dm " + Table::fmt(dm_sum, 4) +
                ", 2-way " + Table::fmt(sa_sum, 4) + ", dynex " +
                Table::fmt(de_sum, 4) + "  (hit 1.0 / +0.4 for 2-way, "
                "penalty 16)");
    report.verdict(dm_sum < sa_sum,
                   "at these costs the direct-mapped cache already "
                   "beats 2-way on AMAT (the premise of the paper)");
    report.verdict(de_sum < dm_sum,
                   "dynamic exclusion improves the winner further at "
                   "unchanged hit time");
    report.finish();
    return report.exitCode();
}
