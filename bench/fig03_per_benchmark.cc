/**
 * @file
 * Figure 3: instruction cache performance for each benchmark at the
 * canonical 32KB / 4B-line configuration — conventional direct-mapped
 * vs dynamic exclusion vs optimal direct-mapped.
 *
 * Paper: all benchmarks with a high miss rate improve significantly;
 * nasa7 and tomcatv show a slight cold-start increase; dynamic
 * exclusion sits between the conventional and optimal caches.
 */

#include "bench_common.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig03",
        "Instruction cache performance per benchmark (S=32KB, b=4B)",
        "high-miss benchmarks improve significantly; nasa7/tomcatv see "
        "only a slight cold-start increase");

    report.table().setHeader({"benchmark", "direct-mapped %",
                              "dynamic-exclusion %", "optimal %",
                              "de reduction %"});

    double avg_dm = 0.0, avg_de = 0.0, avg_opt = 0.0;
    bool ordering_holds = true;
    bool high_miss_improve = true;
    bool kernels_unharmed = true;

    for (const auto &name : suiteNames()) {
        const auto trace = Workloads::instructions(name, refs());
        const NextUseIndex index(*trace, kWordLine,
                                 NextUseMode::RunStart);
        const TriadResult triad =
            runTriad(*trace, index, kCacheBytes, kWordLine);

        report.table().addRow({name, Table::fmt(triad.dmMissPct(), 3),
                               Table::fmt(triad.deMissPct(), 3),
                               Table::fmt(triad.optMissPct(), 3),
                               Table::fmt(triad.deImprovementPct(), 1)});

        avg_dm += triad.dmMissPct();
        avg_de += triad.deMissPct();
        avg_opt += triad.optMissPct();

        ordering_holds =
            ordering_holds && triad.optMissPct() <= triad.dmMissPct() +
                                                        1e-9;
        if (triad.dmMissPct() > 1.0) {
            high_miss_improve =
                high_miss_improve && triad.deImprovementPct() > 10.0;
        }
        if (name == "nasa7" || name == "tomcatv" || name == "mat300") {
            kernels_unharmed = kernels_unharmed &&
                triad.deMissPct() - triad.dmMissPct() < 0.1;
        }
    }
    avg_dm /= 10.0;
    avg_de /= 10.0;
    avg_opt /= 10.0;

    report.note("suite average: dm " + Table::fmt(avg_dm, 3) + "%, de " +
                Table::fmt(avg_de, 3) + "%, optimal " +
                Table::fmt(avg_opt, 3) + "%");

    report.verdict(ordering_holds,
                   "optimal lower-bounds the conventional cache on "
                   "every benchmark");
    report.verdict(high_miss_improve,
                   "every high-miss (>1%) benchmark improves by >10% "
                   "under dynamic exclusion");
    report.verdict(kernels_unharmed,
                   "cache-resident kernels see at most a slight "
                   "cold-start increase (paper: nasa7/tomcatv)");
    report.finish();
    return report.exitCode();
}
