/**
 * @file
 * Figure 13 (the paper's table): dynamic-exclusion efficiency — the
 * miss-rate reduction per unit of added area, comparing an 8KB
 * direct-mapped cache extended with dynamic exclusion (a last-line
 * buffer plus four hashed hit-last bits per line: ~3.4% extra area)
 * against simply doubling the capacity to 16KB (100% extra area).
 *
 * Paper: Dsize 3.4% vs 100%; Dmiss ~21% vs ~41%; dynamic exclusion is
 * roughly 15x more efficient per unit area.
 */

#include "bench_common.h"
#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"
#include "util/stats.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    constexpr std::uint64_t kBase = 8 * 1024;
    constexpr std::uint32_t kLine = 16;

    FigureReport report(
        "fig13", "Dynamic-exclusion efficiency (b=16B)",
        "adding dynamic exclusion (~3.4% area) vs doubling capacity "
        "(100% area): the paper finds ~15x better miss reduction per "
        "unit area");

    double dm8 = 0.0, de8 = 0.0, dm16 = 0.0;
    for (const auto &name : suiteNames()) {
        const auto trace = Workloads::instructions(name, refs());

        DirectMappedCache base(CacheGeometry::directMapped(kBase, kLine));
        dm8 += 100.0 * runTrace(base, *trace).missRate();

        DynamicExclusionConfig config;
        config.useLastLine = true;
        DynamicExclusionCache dynex_cache(
            CacheGeometry::directMapped(kBase, kLine), config,
            std::make_unique<HashedHitLastStore>(4 * kBase / kLine,
                                                 false));
        de8 += 100.0 * runTrace(dynex_cache, *trace).missRate();

        DirectMappedCache doubled(
            CacheGeometry::directMapped(2 * kBase, kLine));
        dm16 += 100.0 * runTrace(doubled, *trace).missRate();
    }
    dm8 /= 10.0;
    de8 /= 10.0;
    dm16 /= 10.0;

    // Area model from the paper: a 16B last-line buffer plus four
    // hit-last bits and one sticky bit per line against the full tag +
    // data array; the paper quotes 3.4% for this configuration.
    const double de_area_pct = 3.4;
    const double double_area_pct = 100.0;
    const double de_miss_gain = percentReduction(dm8, de8);
    const double double_miss_gain = percentReduction(dm8, dm16);
    const double de_efficiency = de_miss_gain / de_area_pct;
    const double double_efficiency = double_miss_gain / double_area_pct;
    const double ratio =
        double_efficiency > 0 ? de_efficiency / double_efficiency : 0.0;

    report.table().setHeader(
        {"design", "extra area %", "miss rate %", "miss reduction %",
         "reduction per area"});
    report.table().setAlignment(
        {Table::Align::Left, Table::Align::Right, Table::Align::Right,
         Table::Align::Right, Table::Align::Right});
    report.table().addRow({"8KB direct-mapped", "-", Table::fmt(dm8, 3),
                           "-", "-"});
    report.table().addRow({"8KB dynamic exclusion",
                           Table::fmt(de_area_pct, 1),
                           Table::fmt(de8, 3),
                           Table::fmt(de_miss_gain, 1),
                           Table::fmt(de_efficiency, 2)});
    report.table().addRow({"16KB direct-mapped",
                           Table::fmt(double_area_pct, 1),
                           Table::fmt(dm16, 3),
                           Table::fmt(double_miss_gain, 1),
                           Table::fmt(double_efficiency, 2)});

    report.note("efficiency ratio (dynamic exclusion vs doubling): " +
                Table::fmt(ratio, 1) + "x (paper: ~15x)");
    report.verdict(de_miss_gain > 0,
                   "dynamic exclusion reduces the 8KB miss rate");
    report.verdict(ratio > 3.0,
                   "dynamic exclusion is several times more "
                   "area-efficient than doubling capacity (paper 15x)");
    report.finish();
    return report.exitCode();
}
