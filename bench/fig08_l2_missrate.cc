/**
 * @file
 * Figure 8: L2 global miss rate vs L2 size for the three hit-last
 * storage options and the conventional baseline (L1=32KB, b=4B).
 *
 * Paper: assume-miss is best for the L2 because it maximizes the
 * difference between the two levels; hashed also improves the L2;
 * assume-hit does not help because everything in L1 is also in L2.
 */

#include "hierarchy_sweep.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig08", "L2 global miss rate vs L2 size (L1=32KB, b=4B)",
        "assume-miss < hashed < assume-hit ~= conventional");

    report.table().setHeader({"L2 size", "conventional %",
                              "assume-hit %", "assume-miss %",
                              "hashed %"});

    const auto rows = hierarchySweep();
    bool exclusive_wins = true;
    bool assume_hit_matches_dm = true;
    bool falls_with_size = true;
    double prev_dm = 1e9;
    for (const auto &row : rows) {
        report.table().addRow(
            {formatSize(kCacheBytes * row.ratio),
             Table::fmt(row.l2Dm, 3), Table::fmt(row.l2AssumeHit, 3),
             Table::fmt(row.l2AssumeMiss, 3),
             Table::fmt(row.l2Hashed, 3)});

        // At ratio 1 every configuration thrashes the tiny L2 equally;
        // the separation the paper plots appears once L2 > L1.
        if (row.ratio >= 2) {
            exclusive_wins = exclusive_wins &&
                row.l2AssumeMiss <= row.l2AssumeHit + 1e-9 &&
                row.l2Hashed <= row.l2AssumeHit + 0.02;
            assume_hit_matches_dm = assume_hit_matches_dm &&
                std::abs(row.l2AssumeHit - row.l2Dm) <=
                    0.25 * row.l2Dm + 0.02;
        }
        falls_with_size = falls_with_size && row.l2Dm <= prev_dm + 1e-9;
        prev_dm = row.l2Dm;
    }

    report.verdict(exclusive_wins,
                   "the exclusive-style policies (assume-miss, hashed) "
                   "give the L2 a lower global miss rate");
    report.verdict(assume_hit_matches_dm,
                   "assume-hit tracks the conventional L2 (inclusion "
                   "buys the L2 nothing)");
    report.verdict(falls_with_size,
                   "the conventional L2 curve falls with size");
    report.finish();
    return report.exitCode();
}
