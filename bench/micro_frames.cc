/**
 * @file
 * Google-benchmark microbenchmarks of the DXP1 wire protocol: frame
 * encode/decode round-trip throughput for the payloads the serving
 * path actually moves (ping-sized control frames up to full sweep
 * responses), plus the two halves separately so a regression can be
 * attributed to one side.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "server/protocol.h"
#include "util/logging.h"

namespace
{

using namespace dynex;
using namespace dynex::server;

/** A sweep response shaped like a real one: the paper's 8-point size
 * axis with a couple of failure rows. */
std::string
sweepPayload()
{
    SweepResult result;
    result.trace = "espresso.ifetch";
    result.refs = 1000000;
    for (int p = 0; p < 8; ++p)
        result.points.push_back({1024ull << p, 1, 21.5 / (p + 1),
                                 17.25 / (p + 1), 12.125 / (p + 1)});
    result.failures.push_back({"espresso", 4096, "triad", 4,
                               "injected fault for shape"});
    result.failures.push_back({"espresso", 8192, "dm", 3,
                               "short read at byte 12345"});
    return encodeSweepResponse(result);
}

void
BM_FrameRoundTrip(benchmark::State &state)
{
    std::string payload;
    if (state.range(0) > 0)
        payload = sweepPayload();
    for (auto _ : state) {
        const std::string wire =
            encodeFrame(MsgType::SweepResponse, payload);
        Result<Frame> frame = decodeFrame(wire);
        if (!frame.ok())
            DYNEX_FATAL("frame round-trip failed in bench");
        benchmark::DoNotOptimize(frame.value().payload);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kFrameHeaderBytes + payload.size() +
                                  kFrameTrailerBytes));
}
BENCHMARK(BM_FrameRoundTrip)
    ->Arg(0)  // empty control frame (ping/list/stats requests)
    ->Arg(1); // full sweep response

void
BM_FrameEncode(benchmark::State &state)
{
    const std::string payload = sweepPayload();
    for (auto _ : state) {
        std::string wire = encodeFrame(MsgType::SweepResponse, payload);
        benchmark::DoNotOptimize(wire);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kFrameHeaderBytes + payload.size() +
                                  kFrameTrailerBytes));
}
BENCHMARK(BM_FrameEncode);

void
BM_FrameDecode(benchmark::State &state)
{
    const std::string wire =
        encodeFrame(MsgType::SweepResponse, sweepPayload());
    for (auto _ : state) {
        Result<Frame> frame = decodeFrame(wire);
        if (!frame.ok())
            DYNEX_FATAL("frame decode failed in bench");
        benchmark::DoNotOptimize(frame.value().payload);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_FrameDecode);

/** The full message path a sweep response takes: body encode, frame,
 * decode, body parse — the per-request serialization cost a server
 * worker pays on top of the simulation itself. */
void
BM_SweepResponseRoundTrip(benchmark::State &state)
{
    SweepResult result;
    result.trace = "espresso.ifetch";
    result.refs = 1000000;
    for (int p = 0; p < 8; ++p)
        result.points.push_back({1024ull << p, 1, 21.5 / (p + 1),
                                 17.25 / (p + 1), 12.125 / (p + 1)});
    for (auto _ : state) {
        const std::string wire = encodeFrame(
            MsgType::SweepResponse, encodeSweepResponse(result));
        Result<Frame> frame = decodeFrame(wire);
        if (!frame.ok())
            DYNEX_FATAL("sweep frame decode failed in bench");
        Result<SweepResult> parsed =
            parseSweepResponse(frame.value().payload);
        if (!parsed.ok())
            DYNEX_FATAL("sweep body parse failed in bench");
        benchmark::DoNotOptimize(parsed.value().points);
    }
}
BENCHMARK(BM_SweepResponseRoundTrip);

} // namespace

BENCHMARK_MAIN();
