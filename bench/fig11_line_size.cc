/**
 * @file
 * Figure 11: instruction-cache performance at 32KB for line sizes
 * 4B-64B, with the last-line buffer (Section 6, scheme 2) in front of
 * the dynamic-exclusion cache for lines above one instruction.
 *
 * Paper: the improvement declines progressively from ~37% at 4B lines
 * to ~25% at 64B lines (internal fragmentation adds conflicts the FSM
 * cannot resolve), while absolute miss rates fall with line size.
 */

#include "bench_common.h"

int
main()
{
    using namespace dynex;
    using namespace dynex::bench;

    FigureReport report(
        "fig11",
        "Instruction-cache performance vs line size (S=32KB)",
        "improvement declines with line size but remains substantial "
        "at 64B (paper: 37% -> 25%)");

    report.table().setHeader({"line", "direct-mapped %",
                              "dynamic-exclusion %", "optimal %",
                              "de gain %"});

    DynamicExclusionConfig config;
    std::vector<double> gains;
    bool rates_fall = true;
    double prev_dm = 1e9;
    for (const std::uint32_t line : paperLineSizes()) {
        config.useLastLine = line > kWordLine;
        const auto points = sweepSuiteLineSizes(
            suiteNames(), refs(), kCacheBytes, {line}, config);
        const auto &p = points.front();
        gains.push_back(p.deImprovementPct());
        report.table().addRow({formatSize(line),
                               Table::fmt(p.dmMissPct, 3),
                               Table::fmt(p.deMissPct, 3),
                               Table::fmt(p.optMissPct, 3),
                               Table::fmt(p.deImprovementPct(), 1)});
        rates_fall = rates_fall && p.dmMissPct <= prev_dm + 1e-9;
        prev_dm = p.dmMissPct;
    }

    report.verdict(rates_fall,
                   "absolute miss rates fall with line size (spatial "
                   "locality)");
    report.verdict(gains.back() > 8.0,
                   "a substantial gain survives at 64B lines "
                   "(paper: ~25%)");
    report.verdict(gains.front() >= gains.back() - 2.0,
                   "the relative gain declines (or holds) as lines "
                   "grow (paper: 37% -> 25%)");
    report.finish();
    return report.exitCode();
}
