/**
 * @file
 * dynex_serve: the simulation server daemon.
 *
 *   dynex_serve [--port P] [--port-file F] [--workers N] [--queue N]
 *               [--store-budget SIZE] [--refs N]
 *               [--bench NAME]... [--trace FILE]... [--suite]
 *               [--admission-budget-ms N] [--client-burst-ms N]
 *               [--no-admission]
 *               [--chaos-seed N] [--chaos-spec SPEC]
 *               [--metrics-out F] [--trace-out F]
 *               [--log-json] [--log-level L] [--log-rate N]
 *               [--slow-request-ms N] [--no-telemetry]
 *               [--test-delay-ms N]
 *
 * Serves the DXP1 protocol (see docs/serving.md) over loopback TCP:
 * ping, trace listing, single replays, and full size sweeps, with a
 * byte-budgeted LRU trace cache shared across requests. With no
 * --bench/--trace/--suite the whole synthetic suite is served.
 *
 * The process runs until SIGINT/SIGTERM, then drains gracefully:
 * in-flight requests finish, new connections stop being accepted, and
 * — when --metrics-out/--trace-out were given — the lifetime metrics
 * report and Chrome trace are written on the way out.
 *
 * Exit codes: 0 ok, 2 usage error, 3 I/O error (bind/write failures).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace_events.h"
#include "server/server.h"
#include "sim/sweep.h"
#include "tracegen/spec.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"
#include "util/version.h"

namespace
{

using namespace dynex;

std::atomic<bool> gStopRequested{false};

void onSignal(int)
{
    gStopRequested.store(true, std::memory_order_relaxed);
}

int usage()
{
    std::fprintf(
        stderr,
        "usage: dynex_serve [options]\n"
        "\n"
        "  --port P          listen port (default: ephemeral)\n"
        "  --port-file F     write the bound port to F once listening\n"
        "  --workers N       connection worker threads (default 1)\n"
        "  --queue N         accepted-connection queue capacity; a\n"
        "                    full queue answers BUSY (default 16)\n"
        "  --store-budget S  TraceStore byte budget, e.g. 512M\n"
        "                    (default 1G); file-backed traces are\n"
        "                    charged their on-disk size, so .dxt3\n"
        "                    files stretch the budget ~4x\n"
        "  --refs N          synthetic references per benchmark\n"
        "  --bench NAME      serve one suite benchmark (repeatable)\n"
        "  --trace FILE      serve a .dxt/.dxt3/.din trace file\n"
        "                    (repeatable)\n"
        "  --suite           serve every suite benchmark\n"
        "  --admission-budget-ms N  concurrent estimated-cost budget\n"
        "                    for admission control (default 2000); a\n"
        "                    replay/sweep estimated to push past it is\n"
        "                    shed with BUSY + retryAfterMs\n"
        "  --client-burst-ms N  per-client token-bucket burst for fair\n"
        "                    admission (default 1000)\n"
        "  --no-admission    disable admission control entirely\n"
        "  --chaos-seed N    seed for deterministic fault injection\n"
        "                    (default 1992)\n"
        "  --chaos-spec S    enable seeded chaos, e.g.\n"
        "                    busy=0.2,trunc=0.1,delay=0.3,delay-ms=20,\n"
        "                    load-fail=0.4 (probabilities in [0,1];\n"
        "                    off by default)\n"
        "  --metrics-out F   write a JSON run report on shutdown\n"
        "  --trace-out F     write Chrome trace events on shutdown\n"
        "  --log-json        emit structured JSONL request logs on\n"
        "                    stderr (one JSON object per line)\n"
        "  --log-level L     log threshold: debug|info|warn|error\n"
        "                    (default info; implies --log-json)\n"
        "  --log-rate N      info/debug lines admitted per second, 0\n"
        "                    = unlimited (default 200); warn/error\n"
        "                    lines are never rate-limited\n"
        "  --slow-request-ms N  warn-log any request slower than N ms\n"
        "                    end-to-end (implies --log-json)\n"
        "  --no-telemetry    disable latency histograms, request spans\n"
        "                    and request logs (flat counters remain)\n"
        "  --test-delay-ms N (testing) stall each request N ms before\n"
        "                    executing, to exercise deadlines\n"
        "  --version         print the server version and exit\n"
        "\n"
        "exit codes: 0 ok, 2 usage, 3 io error\n");
    return 2;
}

std::string stemOf(const std::string &path)
{
    return std::filesystem::path(path).stem().string();
}

void addSuite(server::ServerConfig &config)
{
    for (const auto &info : specSuite())
        config.traces.push_back({info.name, "", 0});
}

} // namespace

int main(int argc, char **argv)
{
    server::ServerConfig config;
    std::string portFile;
    std::string metricsOut;
    std::string traceOut;
    bool explicitTraces = false;
    bool logJson = false;
    obs::LoggerOptions logOptions;

    for (int i = 1; i < argc; ++i)
    {
        const std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
            {
                std::fprintf(stderr, "dynex_serve: %s needs a value\n",
                             flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (flag == "--version")
        {
            std::printf("dynex_serve %s\n", versionString());
            return 0;
        }
        if (flag == "--suite")
        {
            addSuite(config);
            explicitTraces = true;
            continue;
        }
        if (flag == "--no-admission")
        {
            config.admission.enabled = false;
            continue;
        }
        if (flag == "--log-json")
        {
            logJson = true;
            continue;
        }
        if (flag == "--no-telemetry")
        {
            config.telemetry = false;
            continue;
        }
        const char *v = value();
        if (!v)
            return 2;
        if (flag == "--port")
        {
            config.port =
                static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        }
        else if (flag == "--port-file")
        {
            portFile = v;
        }
        else if (flag == "--workers")
        {
            config.workers =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        }
        else if (flag == "--queue")
        {
            config.queueCapacity = std::strtoul(v, nullptr, 10);
        }
        else if (flag == "--store-budget")
        {
            const auto parsed = parseSize(v);
            if (!parsed)
            {
                std::fprintf(stderr, "dynex_serve: bad size '%s'\n", v);
                return 2;
            }
            config.storeBudgetBytes = *parsed;
        }
        else if (flag == "--refs")
        {
            config.refs = std::strtoull(v, nullptr, 10);
        }
        else if (flag == "--bench")
        {
            if (!isSpecBenchmark(v))
            {
                std::fprintf(stderr,
                             "dynex_serve: unknown benchmark '%s'\n", v);
                return 2;
            }
            config.traces.push_back({v, "", 0});
            explicitTraces = true;
        }
        else if (flag == "--trace")
        {
            std::error_code ec;
            const auto size = std::filesystem::file_size(v, ec);
            if (ec)
            {
                std::fprintf(stderr,
                             "dynex_serve: cannot stat '%s': %s\n", v,
                             ec.message().c_str());
                return 2;
            }
            config.traces.push_back({stemOf(v), v, size});
            explicitTraces = true;
        }
        else if (flag == "--metrics-out")
        {
            metricsOut = v;
        }
        else if (flag == "--trace-out")
        {
            traceOut = v;
        }
        else if (flag == "--admission-budget-ms")
        {
            config.admission.costBudgetNs =
                std::strtoull(v, nullptr, 10) * 1'000'000ull;
        }
        else if (flag == "--client-burst-ms")
        {
            config.admission.clientBurstNs =
                std::strtoull(v, nullptr, 10) * 1'000'000ull;
        }
        else if (flag == "--chaos-seed")
        {
            config.chaosSeed = std::strtoull(v, nullptr, 10);
        }
        else if (flag == "--chaos-spec")
        {
            Result<server::ChaosSpec> spec = server::parseChaosSpec(v);
            if (!spec.ok())
            {
                std::fprintf(stderr, "dynex_serve: %s\n",
                             spec.status().toString().c_str());
                return 2;
            }
            config.chaos = spec.value();
        }
        else if (flag == "--log-level")
        {
            if (!obs::parseLogLevel(v, logOptions.minLevel))
            {
                std::fprintf(stderr,
                             "dynex_serve: bad log level '%s'\n", v);
                return 2;
            }
            logJson = true;
        }
        else if (flag == "--log-rate")
        {
            logOptions.ratePerSec =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
            logOptions.burst = logOptions.ratePerSec * 2;
        }
        else if (flag == "--slow-request-ms")
        {
            config.slowRequestMs =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
            logJson = true;
        }
        else if (flag == "--test-delay-ms")
        {
            config.testDelayBeforeExecuteMs =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        }
        else
        {
            std::fprintf(stderr, "dynex_serve: unknown option '%s'\n",
                         flag.c_str());
            return usage();
        }
    }
    if (!explicitTraces)
        addSuite(config);

    // Lifetime observability: one collector covers every request the
    // server answers; the report is written during drain.
    std::unique_ptr<obs::MetricsCollector> collector;
    std::unique_ptr<obs::Tracer> tracer;
    std::unique_ptr<obs::Logger> logger;
    if (logJson)
    {
        logger = std::make_unique<obs::Logger>(logOptions);
        obs::Logger::setActive(logger.get());
    }
    if (!metricsOut.empty())
    {
        collector = std::make_unique<obs::MetricsCollector>();
        obs::setActiveMetrics(collector.get());
    }
    if (!traceOut.empty())
    {
        tracer = std::make_unique<obs::Tracer>();
        obs::Tracer::setActive(tracer.get());
        obs::setPoolJobSpans(true);
    }

    server::Server server(config);
    const Status started = server.start();
    if (!started.ok())
    {
        std::fprintf(stderr, "dynex_serve: %s\n",
                     started.toString().c_str());
        return 3;
    }

    if (!portFile.empty())
    {
        const Status wrote = obs::writeTextFile(
            portFile, std::to_string(server.port()) + "\n");
        if (!wrote.ok())
        {
            std::fprintf(stderr, "dynex_serve: cannot write %s: %s\n",
                         portFile.c_str(), wrote.toString().c_str());
            server.stop();
            return 3;
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    if (logger)
        logger->line(obs::LogLevel::Info, "listening")
            .str("version", versionString())
            .u64("port", server.port())
            .u64("workers", config.workers)
            .u64("traces", config.traces.size());
    else
        std::fprintf(stderr,
                     "dynex_serve %s: listening on 127.0.0.1:%u "
                     "(%u workers, %zu traces)\n",
                     versionString(), server.port(), config.workers,
                     config.traces.size());

    while (!gStopRequested.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    if (logger)
        logger->line(obs::LogLevel::Info, "draining");
    else
        std::fprintf(stderr, "dynex_serve: draining...\n");
    server.stop();

    int rc = 0;
    obs::setPoolJobSpans(false);
    obs::Tracer::setActive(nullptr);
    obs::setActiveMetrics(nullptr);
    if (tracer)
    {
        const Status wrote = tracer->writeJson(traceOut);
        if (!wrote.ok())
        {
            std::fprintf(stderr, "dynex_serve: cannot write %s: %s\n",
                         traceOut.c_str(), wrote.toString().c_str());
            rc = 3;
        }
    }
    if (collector)
    {
        obs::RunInfo info;
        info.trace = "server";
        info.refs = 0;
        info.lineBytes = 0;
        info.engine = "server";
        info.workers = ThreadPool::global().workers();
        obs::RunReport report =
            obs::RunReport::build(info, *collector, {});
        report.extra = server.statsRows();
        const Status wrote =
            obs::writeTextFile(metricsOut, report.toJson());
        if (!wrote.ok())
        {
            std::fprintf(stderr, "dynex_serve: cannot write %s: %s\n",
                         metricsOut.c_str(), wrote.toString().c_str());
            rc = 3;
        }
    }
    const server::ServerCounters totals = server.counters();
    if (logger)
    {
        logger->line(obs::LogLevel::Info, "served")
            .u64("requests", totals.requests)
            .u64("errors", totals.errors)
            .u64("busy", totals.busy)
            .u64("connections", totals.connections)
            .u64("log-lines-dropped", logger->droppedLines());
        obs::Logger::setActive(nullptr);
    }
    else
    {
        std::fprintf(
            stderr,
            "dynex_serve: served %llu requests "
            "(%llu errors, %llu busy) over %llu connections\n",
            static_cast<unsigned long long>(totals.requests),
            static_cast<unsigned long long>(totals.errors),
            static_cast<unsigned long long>(totals.busy),
            static_cast<unsigned long long>(totals.connections));
    }
    return rc;
}
