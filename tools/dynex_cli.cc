/**
 * @file
 * The dynex command-line tool: generate, inspect, convert, and
 * simulate traces from the shell.
 *
 *   dynex list
 *   dynex gen <benchmark> <out.{dxt,din}> [--refs N] [--stream KIND]
 *   dynex info <trace-file>
 *   dynex convert <in> <out> [--to FORMAT] [--force]
 *   dynex import <in> <out> --format {text,lackey}
 *             [--out-format {dxt2,dxt3}] [--refs N] [--force]
 *   dynex campaign run <spec.dxc> [--host H --port P] [--threads N]
 *   dynex campaign check <spec.dxc>
 *   dynex sim <trace-file|benchmark> [--cache KIND] [--size S]
 *             [--line L] [--sticky N] [--lastline] [--victim N]
 *             [--refs N] [--stream KIND]
 *   dynex triad <trace-file|benchmark> [--size S] [--line L] [--refs N]
 *   dynex sweep <trace-file|benchmark> [--line L] [--refs N]
 *             [--threads N] [--replay batched|per-leg|kernel]
 *             [--metrics-out F] [--csv-out F] [--trace-out F]
 *             [--progress]
 *   dynex analyze <trace-file|benchmark> [--size S] [--line L]
 *             [--refs N] [--stream KIND]
 *
 * KIND (cache): dm | dynex | 2way | 4way | 8way | fa | opt
 * KIND (stream): mixed | ifetch | data        (benchmarks only)
 * S, L accept size suffixes: 32KB, 16, 8K, ...
 *
 * Simulation commands that run several models or sizes (triad, sweep)
 * fan out across a thread pool; --threads N (or the DYNEX_THREADS
 * environment variable) sets the worker count. Results are identical
 * at any thread count.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cache/factory.h"
#include "cache/optimal.h"
#include "cache/victim.h"
#include "server/client.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/prom.h"
#include "obs/run_report.h"
#include "obs/trace_events.h"
#include "obs/trace_merge.h"
#include "sim/analysis.h"
#include "sim/sweep.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "trace/mmap_io.h"
#include "trace/text_io.h"
#include "trace/trace_io.h"
#include "tracegen/spec.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"
#include "util/table.h"
#include "util/version.h"
#include "workload/campaign.h"
#include "workload/executor.h"
#include "workload/import.h"

namespace
{

using namespace dynex;

/** Parsed command-line options after the positional arguments. */
struct Options
{
    std::string cache = "dm";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t lineBytes = 16;
    std::uint8_t stickyMax = 1;
    bool lastLine = false;
    std::uint32_t victimEntries = 0;
    Count refs = 0; // 0 = default
    std::string stream = "ifetch";
    unsigned threads = 0; // 0 = DYNEX_THREADS / hardware default
    ReplayEngine replay = ReplayEngine::Batched;
    std::uint64_t injectFaultSize = 0; // 0 = no injection
    std::string host = "127.0.0.1"; // --host: remote server address
    std::uint16_t port = 0;         // --port: remote server port
    std::uint32_t deadlineMs = 0;   // --deadline-ms: remote deadline
    unsigned retries = 0;           // --retries: remote retry attempts
    std::uint32_t backoffMs = 100;  // --backoff-ms: retry base backoff
    std::string clientId;           // --client-id: hello identity
    std::string metricsOut;  // --metrics-out: JSON run report
    std::string csvOut;      // --csv-out: sweep table as CSV
    std::string traceOut;    // --trace-out: Chrome trace events
    bool progress = false;   // --progress: stderr progress bar
    unsigned watchSec = 0;   // remote-stats --watch: refresh period
    bool prom = false;       // remote-stats --prom: Prometheus text
    std::string format;      // import --format: input format
    std::string outFormat;   // import --out-format: dxt2 | dxt3
    std::string convertTo;   // convert --to: output format override
    bool force = false;      // --force: overwrite existing outputs
};

/** Apply --threads to the simulation pool before any sweep runs. */
void
applyThreads(const Options &options)
{
    if (options.threads > 0)
        ThreadPool::setConfiguredWorkers(options.threads);
}

// Exit codes, mirroring util/status categories (documented in --help):
//   0 success
//   2 usage error (bad command line, unknown benchmark)
//   3 I/O error (unreadable trace, unwritable output, dead server)
//   4 data error (corrupt trace file, implausible sizes)
//   5 internal error (failed sweep legs, library bugs)
constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitData = 4;
constexpr int kExitInternal = 5;

int
exitCodeFor(const Status &status)
{
    switch (status.code()) {
    case StatusCode::Ok:
        return kExitOk;
    case StatusCode::IoError:
        return kExitIo;
    case StatusCode::CorruptInput:
    case StatusCode::ResourceLimit:
    case StatusCode::DeadlineExceeded:
    case StatusCode::Busy:
        return kExitData;
    case StatusCode::Internal:
        break;
    }
    return kExitInternal;
}

/** The full usage text: every subcommand, every flag, the exit-code
 * contract. `dynex help` prints it to stdout (exit 0); error paths
 * print it to stderr (exit 2). */
void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: dynex <command> [args]\n"
        "  help | --help | -h                    this text (to stdout)\n"
        "  list                                  suite benchmarks\n"
        "  gen <benchmark> <out.{dxt,din}>       generate a trace file\n"
        "  info <trace-file>                     summarize a trace\n"
        "  convert <in> <out> [--to F] [--force] convert trace formats\n"
        "                                        (dxt1/dxt2/dxt3/din/\n"
        "                                        text/lackey)\n"
        "  import <in> <out> --format F          import an external\n"
        "         [--out-format dxt2|dxt3]       trace (text or lackey\n"
        "         [--refs N] [--force]           layout) into dxt2/dxt3\n"
        "  campaign run <spec.dxc> [options]     run a campaign spec\n"
        "                                        locally, or on a\n"
        "                                        dynex_serve daemon\n"
        "                                        with --host/--port\n"
        "  campaign check <spec.dxc>             parse + validate only\n"
        "  sim <trace|benchmark> [options]       run one cache model\n"
        "  triad <trace|benchmark> [options]     dm vs dynex vs optimal\n"
        "  sweep <trace|benchmark> [options]     triad over the paper's\n"
        "                                        cache-size axis\n"
        "  analyze <trace|benchmark> [options]   conflict structure\n"
        "  remote-ls --port P [--host H]         list a dynex_serve\n"
        "                                        server's traces\n"
        "  remote-sweep <trace> --port P [opts]  run the size sweep on\n"
        "                                        a dynex_serve server\n"
        "  remote-stats --port P [--watch N]     server stats dashboard\n"
        "               [--prom]                  (counters + latency\n"
        "                                        percentiles)\n"
        "  trace-merge <out> <in>...             merge Chrome traces\n"
        "                                        (client + server) into\n"
        "                                        one aligned timeline\n"
        "  prom-check <file>                     strict-parse Prometheus\n"
        "                                        text exposition\n"
        "  version | --version                   print the version\n"
        "options: --cache K --size S --line L --sticky N --lastline\n"
        "         --victim N --refs N --stream mixed|ifetch|data\n"
        "         --format F   import: input format; valid formats:\n"
        "                      text (one '<type> <hex-addr> [size]'\n"
        "                      reference per line, # comments) and\n"
        "                      lackey (dense 10-byte binary records:\n"
        "                      addr u64, kind u8, size u8)\n"
        "         --out-format F  import: on-disk output format (dxt2\n"
        "                      default, dxt3 compressed); without it\n"
        "                      the output extension decides\n"
        "         --to F       convert: output format override (dxt1,\n"
        "                      dxt2, dxt3, din, text, lackey); without\n"
        "                      it the output extension decides\n"
        "         --force      convert/import: overwrite an existing\n"
        "                      output file instead of refusing\n"
        "         --threads N  simulation worker threads for triad and\n"
        "                      sweep (default: DYNEX_THREADS if set,\n"
        "                      else all hardware threads); any count\n"
        "                      produces identical results\n"
        "         --replay E   sweep replay engine; valid engines:\n"
        "                      batched (default) streams the trace\n"
        "                      once for all sizes and models; per-leg\n"
        "                      replays per leg; kernel uses the SoA\n"
        "                      branchless kernel (fastest); all three\n"
        "                      produce identical output\n"
        "         --inject-fault S  (testing) fail the sweep leg at\n"
        "                      cache size S; other legs still complete\n"
        "                      and the failure is reported\n"
        "         --metrics-out F  sweep: write a JSON run report\n"
        "                      (per-leg stats, FSM event counts,\n"
        "                      timings, failures) to F\n"
        "         --csv-out F  sweep: write the sweep table (one row\n"
        "                      per leg, with FSM event counts) to F\n"
        "         --trace-out F  sweep: write Chrome trace-event JSON\n"
        "                      to F; load in chrome://tracing or\n"
        "                      Perfetto\n"
        "         --progress   sweep: draw a progress bar on stderr\n"
        "                      (stdout tables are unaffected)\n"
        "         --host H --port P  remote-* and campaign run: a\n"
        "                      dynex_serve address (default host\n"
        "                      127.0.0.1); campaign run without --port\n"
        "                      executes locally\n"
        "         --deadline-ms N  remote-*: per-request deadline; an\n"
        "                      expired deadline is a data error; with\n"
        "                      --retries it also bounds the total time\n"
        "                      spent retrying\n"
        "         --retries N  remote-*: retry BUSY sheds and dropped\n"
        "                      connections up to N times, with\n"
        "                      exponential backoff + jitter honoring\n"
        "                      the server's retry-after hint\n"
        "         --backoff-ms N  remote-*: base retry backoff\n"
        "                      (default 100)\n"
        "         --client-id S  remote-*: identity sent in the DXP1\n"
        "                      hello for per-client fair admission\n"
        "         --watch N    remote-stats: redraw every N seconds\n"
        "                      until interrupted\n"
        "         --prom       remote-stats: print Prometheus text\n"
        "                      exposition instead of the dashboard\n"
        "                      (pipe to a node-exporter textfile)\n"
        "         --trace-out F  remote-sweep: also record client-side\n"
        "                      rpc spans (trace ids sent on the wire\n"
        "                      match the server's --trace-out spans;\n"
        "                      stitch with trace-merge)\n"
        "exit codes: 0 ok, 2 usage error, 3 i/o error, 4 data error\n"
        "            (corrupt/implausible input), 5 internal error\n"
        "            (failed sweep or campaign legs, library bugs)\n");
}

int
usage()
{
    printUsage(stderr);
    return kExitUsage;
}

bool
looksLikeFile(const std::string &name)
{
    return name.find('.') != std::string::npos ||
           name.find('/') != std::string::npos;
}

bool
isDinPath(const std::string &path)
{
    return path.size() >= 4 &&
           iequals(path.substr(path.size() - 4), ".din");
}

/** A .dxt3 extension selects the compressed binary format. */
bool
isDxt3Path(const std::string &path)
{
    return path.size() >= 5 &&
           iequals(path.substr(path.size() - 5), ".dxt3");
}

/** Load a trace file; on failure print the reason and set
 * @p exit_code (3 for I/O, 4 for corrupt/oversized data). */
std::optional<Trace>
loadTraceFile(const std::string &path, int &exit_code)
{
    Result<Trace> trace = isDinPath(path) ? readDinTraceFile(path)
                                          : readTraceFileFast(path);
    if (!trace.ok()) {
        std::fprintf(stderr, "dynex: cannot read %s: %s\n", path.c_str(),
                     trace.status().toString().c_str());
        exit_code = exitCodeFor(trace.status());
        return std::nullopt;
    }
    return std::move(trace).value();
}

/** @return the exit code of writing @p trace to @p path (0 ok). */
int
storeTraceFile(const Trace &trace, const std::string &path)
{
    const Status status =
        isDinPath(path) ? writeDinTraceFile(trace, path)
        : isDxt3Path(path)
            ? writeTraceFile(trace, path, TraceFormat::Dxt3)
            : writeTraceFile(trace, path);
    if (!status.ok())
        std::fprintf(stderr, "dynex: cannot write %s: %s\n",
                     path.c_str(), status.toString().c_str());
    return exitCodeFor(status);
}

/** Resolve a positional trace argument: a file path or a benchmark.
 * On failure, @p exit_code carries the mapped exit code. */
std::optional<Trace>
resolveTrace(const std::string &arg, const Options &options,
             int &exit_code)
{
    if (looksLikeFile(arg))
        return loadTraceFile(arg, exit_code);
    if (!isSpecBenchmark(arg)) {
        std::fprintf(stderr,
                     "dynex: '%s' is neither a file nor a benchmark\n",
                     arg.c_str());
        exit_code = kExitUsage;
        return std::nullopt;
    }
    const Count refs =
        options.refs ? options.refs : Workloads::defaultRefs();
    if (options.stream == "mixed")
        return *Workloads::mixed(arg, refs);
    if (options.stream == "data")
        return *Workloads::data(arg, refs);
    return *Workloads::instructions(arg, refs);
}

bool
parseOptions(int argc, char **argv, int first, Options &options)
{
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "dynex: %s needs a value\n",
                             flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (flag == "--lastline") {
            options.lastLine = true;
        } else if (flag == "--force") {
            options.force = true;
        } else if (flag == "--format") {
            const char *v = value();
            if (!v)
                return false;
            if (!iequals(v, "text") && !iequals(v, "lackey")) {
                std::fprintf(stderr,
                             "dynex: bad --format '%s' (valid formats: "
                             "text, lackey)\n",
                             v);
                return false;
            }
            options.format = v;
        } else if (flag == "--out-format") {
            const char *v = value();
            if (!v)
                return false;
            if (!iequals(v, "dxt2") && !iequals(v, "dxt3")) {
                std::fprintf(stderr,
                             "dynex: bad --out-format '%s' (valid "
                             "formats: dxt2, dxt3)\n",
                             v);
                return false;
            }
            options.outFormat = v;
        } else if (flag == "--to") {
            const char *v = value();
            if (!v)
                return false;
            if (!iequals(v, "dxt1") && !iequals(v, "dxt2") &&
                !iequals(v, "dxt3") && !iequals(v, "din") &&
                !iequals(v, "text") && !iequals(v, "lackey")) {
                std::fprintf(stderr,
                             "dynex: bad --to '%s' (valid formats: "
                             "dxt1, dxt2, dxt3, din, text, lackey)\n",
                             v);
                return false;
            }
            options.convertTo = v;
        } else if (flag == "--progress") {
            options.progress = true;
        } else if (flag == "--prom") {
            options.prom = true;
        } else if (flag == "--watch") {
            const char *v = value();
            if (!v)
                return false;
            const auto parsed = std::strtoull(v, nullptr, 10);
            if (parsed == 0) {
                std::fprintf(stderr,
                             "dynex: --watch needs a period >= 1\n");
                return false;
            }
            options.watchSec = static_cast<unsigned>(parsed);
        } else if (flag == "--metrics-out" || flag == "--csv-out" ||
                   flag == "--trace-out") {
            const char *v = value();
            if (!v)
                return false;
            if (flag == "--metrics-out")
                options.metricsOut = v;
            else if (flag == "--csv-out")
                options.csvOut = v;
            else
                options.traceOut = v;
        } else if (flag == "--cache") {
            const char *v = value();
            if (!v)
                return false;
            options.cache = v;
        } else if (flag == "--replay") {
            const char *v = value();
            if (!v)
                return false;
            if (iequals(v, "batched")) {
                options.replay = ReplayEngine::Batched;
            } else if (iequals(v, "per-leg")) {
                options.replay = ReplayEngine::PerLeg;
            } else if (iequals(v, "kernel")) {
                options.replay = ReplayEngine::Kernel;
            } else {
                std::fprintf(stderr,
                             "dynex: bad --replay '%s' (valid engines: "
                             "batched, per-leg, kernel)\n",
                             v);
                return false;
            }
        } else if (flag == "--stream") {
            const char *v = value();
            if (!v)
                return false;
            options.stream = v;
            if (options.stream != "mixed" && options.stream != "ifetch" &&
                options.stream != "data") {
                std::fprintf(stderr, "dynex: bad --stream '%s'\n", v);
                return false;
            }
        } else if (flag == "--size" || flag == "--line" ||
                   flag == "--inject-fault") {
            const char *v = value();
            if (!v)
                return false;
            const auto parsed = parseSize(v);
            if (!parsed) {
                std::fprintf(stderr, "dynex: bad size '%s'\n", v);
                return false;
            }
            if (flag == "--size")
                options.sizeBytes = *parsed;
            else if (flag == "--inject-fault")
                options.injectFaultSize = *parsed;
            else
                options.lineBytes =
                    static_cast<std::uint32_t>(*parsed);
        } else if (flag == "--host") {
            const char *v = value();
            if (!v)
                return false;
            options.host = v;
        } else if (flag == "--client-id") {
            const char *v = value();
            if (!v)
                return false;
            options.clientId = v;
        } else if (flag == "--port" || flag == "--deadline-ms" ||
                   flag == "--retries" || flag == "--backoff-ms") {
            const char *v = value();
            if (!v)
                return false;
            const auto parsed = std::strtoull(v, nullptr, 10);
            if (flag == "--port") {
                if (parsed == 0 || parsed > 65535) {
                    std::fprintf(stderr, "dynex: bad --port '%s'\n", v);
                    return false;
                }
                options.port = static_cast<std::uint16_t>(parsed);
            } else if (flag == "--deadline-ms") {
                options.deadlineMs = static_cast<std::uint32_t>(parsed);
            } else if (flag == "--retries") {
                options.retries = static_cast<unsigned>(parsed);
            } else {
                options.backoffMs = static_cast<std::uint32_t>(parsed);
            }
        } else if (flag == "--sticky" || flag == "--victim" ||
                   flag == "--refs" || flag == "--threads") {
            const char *v = value();
            if (!v)
                return false;
            const auto parsed = std::strtoull(v, nullptr, 10);
            if (flag == "--threads" && parsed == 0) {
                std::fprintf(stderr,
                             "dynex: --threads needs a count >= 1\n");
                return false;
            }
            if (flag == "--sticky")
                options.stickyMax = static_cast<std::uint8_t>(parsed);
            else if (flag == "--victim")
                options.victimEntries =
                    static_cast<std::uint32_t>(parsed);
            else if (flag == "--threads")
                options.threads = static_cast<unsigned>(parsed);
            else
                options.refs = parsed;
        } else {
            // Show the full usage text so the correct spelling (and
            // the newer flags) are one error away, not a docs hunt.
            std::fprintf(stderr, "dynex: unknown option '%s'\n",
                         flag.c_str());
            usage();
            return false;
        }
    }
    return true;
}

int
cmdList()
{
    Table table;
    table.setHeader({"benchmark", "description"});
    for (const auto &info : specSuite())
        table.addRow({info.name, info.description});
    std::printf("%s", table.toText().c_str());
    return 0;
}

int
cmdGen(const std::string &benchmark, const std::string &out_path,
       const Options &options)
{
    if (!isSpecBenchmark(benchmark)) {
        std::fprintf(stderr, "dynex: unknown benchmark '%s'\n",
                     benchmark.c_str());
        return kExitUsage;
    }
    int rc = kExitInternal;
    const auto trace = resolveTrace(benchmark, options, rc);
    if (!trace)
        return rc;
    rc = storeTraceFile(*trace, out_path);
    if (rc != kExitOk)
        return rc;
    std::printf("wrote %zu references to %s\n", trace->size(),
                out_path.c_str());
    return kExitOk;
}

int
cmdInfo(const std::string &path)
{
    int rc = kExitInternal;
    const auto trace = loadTraceFile(path, rc);
    if (!trace)
        return rc;
    const TraceSummary summary = trace->summarize();
    std::printf("name:    %s\n", trace->name().c_str());
    std::printf("refs:    %s\n", summary.toString().c_str());
    std::printf("range:   [0x%llx, 0x%llx]\n",
                static_cast<unsigned long long>(summary.minAddr),
                static_cast<unsigned long long>(summary.maxAddr));
    return 0;
}

/** Overwrite guard for convert/import outputs: refuse to clobber an
 * existing file unless --force was given. */
bool
outputWritable(const std::string &path, const Options &options,
               int &exit_code)
{
    if (options.force)
        return true;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return true;
    std::fclose(file);
    std::fprintf(stderr,
                 "dynex: %s exists; pass --force to overwrite\n",
                 path.c_str());
    exit_code = kExitIo;
    return false;
}

/** Write @p trace to @p path in format @p to ("dxt1", "dxt2", "dxt3",
 * "din", "text", "lackey"); empty @p to lets the extension decide. */
int
writeTraceAs(const Trace &trace, const std::string &path,
             const std::string &to)
{
    if (to.empty())
        return storeTraceFile(trace, path);
    Status status;
    if (iequals(to, "dxt1"))
        status = writeTraceFile(trace, path, TraceFormat::Dxt1);
    else if (iequals(to, "dxt2"))
        status = writeTraceFile(trace, path, TraceFormat::Dxt2);
    else if (iequals(to, "dxt3"))
        status = writeTraceFile(trace, path, TraceFormat::Dxt3);
    else if (iequals(to, "din"))
        status = writeDinTraceFile(trace, path);
    else if (iequals(to, "text"))
        status = workload::writeTextTraceFile(trace, path);
    else
        status = workload::writeLackeyTraceFile(trace, path);
    if (!status.ok())
        std::fprintf(stderr, "dynex: cannot write %s: %s\n",
                     path.c_str(), status.toString().c_str());
    return exitCodeFor(status);
}

int
cmdConvert(const std::string &in_path, const std::string &out_path,
           const Options &options)
{
    int rc = kExitOk;
    if (!outputWritable(out_path, options, rc))
        return rc;
    rc = kExitInternal;
    const auto trace = loadTraceFile(in_path, rc);
    if (!trace)
        return rc;
    rc = writeTraceAs(*trace, out_path, options.convertTo);
    if (rc != kExitOk)
        return rc;
    std::printf("converted %zu references: %s -> %s\n", trace->size(),
                in_path.c_str(), out_path.c_str());
    return kExitOk;
}

int
cmdImport(const std::string &in_path, const std::string &out_path,
          const Options &options)
{
    if (options.format.empty()) {
        std::fprintf(stderr,
                     "dynex: import needs --format text|lackey\n");
        return kExitUsage;
    }
    int rc = kExitOk;
    if (!outputWritable(out_path, options, rc))
        return rc;

    workload::ImportOptions limits;
    if (options.refs > 0)
        limits.maxRefs = options.refs;
    Result<Trace> trace =
        iequals(options.format, "lackey")
            ? workload::readLackeyTraceFile(in_path, {}, limits)
            : workload::readTextTraceFile(in_path, {}, limits);
    if (!trace.ok()) {
        std::fprintf(stderr, "dynex: cannot import %s: %s\n",
                     in_path.c_str(),
                     trace.status().toString().c_str());
        return exitCodeFor(trace.status());
    }

    rc = writeTraceAs(trace.value(), out_path, options.outFormat);
    if (rc != kExitOk)
        return rc;
    std::printf("imported %zu references (%s): %s -> %s\n",
                trace.value().size(), options.format.c_str(),
                in_path.c_str(), out_path.c_str());
    return kExitOk;
}

/** The summary table `campaign run` prints: one row per leg, with a
 * miss column per model the spec requests. */
void
printCampaignTable(const workload::CampaignSpec &spec,
                   const workload::CampaignReport &report)
{
    std::vector<std::string> header = {"trace", "line", "size"};
    for (const std::string &model : spec.models)
        header.push_back(model + " miss %");
    Table table;
    table.setHeader(header);
    for (const auto &leg : report.legs) {
        std::vector<std::string> row = {leg.trace,
                                        formatSize(leg.lineBytes),
                                        formatSize(leg.sizeBytes)};
        for (const std::string &model : spec.models) {
            if (!leg.ok) {
                row.push_back("-");
                continue;
            }
            const double pct = model == "dm"      ? leg.dmMissPct
                               : model == "dynex" ? leg.deMissPct
                                                  : leg.optMissPct;
            row.push_back(Table::fmt(pct, 3));
        }
        table.addRow(row);
    }
    std::printf("%s", table.toText().c_str());
}

int
cmdCampaign(const std::string &verb, const std::string &spec_path,
            const Options &options)
{
    Result<workload::CampaignSpec> parsed =
        workload::parseCampaignFile(spec_path);
    if (!parsed.ok()) {
        std::fprintf(stderr, "dynex: %s\n",
                     parsed.status().toString().c_str());
        return exitCodeFor(parsed.status());
    }
    const workload::CampaignSpec &spec = parsed.value();

    if (verb == "check") {
        std::printf("campaign: %s\n", spec.name.c_str());
        std::printf("engine:   %s (sticky %u)\n",
                    workload::replayEngineName(spec.engine),
                    static_cast<unsigned>(spec.stickyMax));
        Table traces;
        traces.setHeader({"trace", "kind", "source"});
        for (const auto &source : spec.traces) {
            const std::string kind =
                source.kind == workload::SourceKind::Bench ? "bench"
                : source.kind == workload::SourceKind::File
                    ? "file"
                    : "import " + source.format;
            traces.addRow({source.label, kind, source.spec});
        }
        std::printf("%s", traces.toText().c_str());
        std::string sizes;
        for (const std::uint64_t size : spec.sizes)
            sizes += (sizes.empty() ? "" : ", ") + formatSize(size);
        std::string lines;
        for (const std::uint32_t line : spec.lines)
            lines += (lines.empty() ? "" : ", ") + formatSize(line);
        std::printf("sizes:    %s\n", sizes.c_str());
        std::printf("lines:    %s\n", lines.c_str());
        std::printf("legs:     %zu\n", spec.traces.size() *
                                           spec.lines.size() *
                                           spec.sizes.size());
        std::printf("%s: valid campaign spec\n", spec_path.c_str());
        return kExitOk;
    }

    applyThreads(options);
    workload::CampaignOptions run;
    run.host = options.host;
    run.port = options.port;
    run.deadlineMs = options.deadlineMs;
    run.retries = options.retries;
    run.backoffMs = options.backoffMs;
    if (!options.clientId.empty())
        run.clientId = options.clientId;
    const Result<workload::CampaignReport> ran =
        workload::runCampaign(spec, run);
    if (!ran.ok()) {
        std::fprintf(stderr, "dynex: %s\n",
                     ran.status().toString().c_str());
        return exitCodeFor(ran.status());
    }
    const workload::CampaignReport &report = ran.value();

    int rc = kExitOk;
    const Status wrote = workload::writeCampaignOutputs(report, spec);
    if (!wrote.ok()) {
        std::fprintf(stderr, "dynex: %s\n", wrote.toString().c_str());
        rc = exitCodeFor(wrote);
    }

    std::printf("campaign %s: %zu leg(s), engine %s%s\n\n",
                report.name.c_str(), report.legs.size(),
                report.engine.c_str(),
                options.port ? " (remote)" : "");
    printCampaignTable(spec, report);
    if (!spec.jsonOut.empty())
        std::printf("\nwrote %s\n", spec.jsonOut.c_str());
    if (!spec.csvOut.empty())
        std::printf("wrote %s\n", spec.csvOut.c_str());

    if (!report.allOk()) {
        Table failed;
        failed.setHeader({"failed leg", "status"});
        for (const auto &failure : report.failures)
            failed.addRow({failure.trace + " @ " +
                               formatSize(failure.sizeBytes),
                           failure.status});
        std::printf("\n%zu leg(s) failed; results above are "
                    "partial\n\n%s",
                    report.failures.size(), failed.toText().c_str());
        return kExitInternal;
    }
    return rc;
}

int
cmdSim(const std::string &target, const Options &options)
{
    int rc = kExitInternal;
    const auto trace = resolveTrace(target, options, rc);
    if (!trace)
        return rc;

    const auto geometry =
        CacheGeometry::directMapped(options.sizeBytes, options.lineBytes);

    std::unique_ptr<CacheModel> cache;
    std::unique_ptr<NextUseIndex> index;
    if (iequals(options.cache, "opt")) {
        index = std::make_unique<NextUseIndex>(*trace, options.lineBytes,
                                               NextUseMode::RunStart);
        cache = std::make_unique<OptimalDirectMappedCache>(geometry,
                                                           *index, true);
    } else if (options.victimEntries > 0 &&
               iequals(options.cache, "dm")) {
        cache = std::make_unique<VictimCache>(geometry,
                                              options.victimEntries);
    } else {
        DynamicExclusionConfig config;
        config.stickyMax = options.stickyMax;
        config.useLastLine = options.lastLine;
        cache = makeCache(options.cache, geometry, config);
    }

    const CacheStats stats = runTrace(*cache, *trace);
    std::printf("trace:   %s (%zu refs)\n", trace->name().c_str(),
                trace->size());
    std::printf("cache:   %s %s\n", cache->name().c_str(),
                cache->geometry().toString().c_str());
    std::printf("result:  %s\n", stats.toString().c_str());
    return 0;
}

int
cmdTriad(const std::string &target, const Options &options)
{
    applyThreads(options);
    int rc = kExitInternal;
    const auto trace = resolveTrace(target, options, rc);
    if (!trace)
        return rc;

    const NextUseIndex index(*trace, options.lineBytes,
                             NextUseMode::RunStart);
    DynamicExclusionConfig config;
    config.stickyMax = options.stickyMax;
    config.useLastLine = options.lineBytes > 4;
    const TriadResult triad = runTriad(
        *trace, index, options.sizeBytes, options.lineBytes, config);

    Table table;
    table.setHeader({"model", "miss %", "misses", "bypasses"});
    table.addRow({"direct-mapped", Table::fmt(triad.dmMissPct(), 3),
                  std::to_string(triad.dm.misses),
                  std::to_string(triad.dm.bypasses)});
    table.addRow({"dynamic-exclusion", Table::fmt(triad.deMissPct(), 3),
                  std::to_string(triad.de.misses),
                  std::to_string(triad.de.bypasses)});
    table.addRow({"optimal", Table::fmt(triad.optMissPct(), 3),
                  std::to_string(triad.opt.misses),
                  std::to_string(triad.opt.bypasses)});
    std::printf("trace: %s (%zu refs), cache %s/%s direct-mapped\n\n",
                trace->name().c_str(), trace->size(),
                formatSize(options.sizeBytes).c_str(),
                formatSize(options.lineBytes).c_str());
    std::printf("%s\n", table.toText().c_str());
    std::printf("dynamic exclusion reduction: %.1f%% (optimal: %.1f%%)\n",
                triad.deImprovementPct(), triad.optImprovementPct());
    return 0;
}

/** Install the requested obs sinks for cmdSweep's run and write their
 * outputs when it ends. Everything is scoped to the sweep call: the
 * global obs pointers are cleared before any file is written. */
class SweepObservation
{
  public:
    SweepObservation(const Options &options, const Trace &trace)
        : opts(options), traceName(trace.name())
    {
        if (!opts.metricsOut.empty() || !opts.csvOut.empty()) {
            collector = std::make_unique<obs::MetricsCollector>();
            // Serial registration in size order: this fixes the leg
            // order every report emits, independent of scheduling.
            for (const std::uint64_t size : paperCacheSizes())
                collector->addLeg(traceName, size);
            obs::setActiveMetrics(collector.get());
        }
        if (!opts.traceOut.empty()) {
            tracer = std::make_unique<obs::Tracer>();
            obs::Tracer::setActive(tracer.get());
            obs::setPoolJobSpans(true);
        }
        if (opts.progress) {
            // Work units are references replayed: the one-pass engines
            // (batched, kernel) stream the trace once for all legs,
            // the per-leg engine once per leg.
            const auto total =
                static_cast<std::uint64_t>(trace.size()) *
                (opts.replay == ReplayEngine::PerLeg
                     ? paperCacheSizes().size()
                     : 1);
            bar = std::make_unique<obs::ProgressBar>(traceName, total);
            obs::ProgressBar::setActive(bar.get());
        }
    }

    ~SweepObservation()
    {
        obs::ProgressBar::setActive(nullptr);
        obs::setPoolJobSpans(false);
        obs::Tracer::setActive(nullptr);
        obs::setActiveMetrics(nullptr);
    }

    SweepObservation(const SweepObservation &) = delete;
    SweepObservation &operator=(const SweepObservation &) = delete;

    /** Uninstall the sinks and write the requested files.
     * @return 0, or the I/O exit code when a file could not be
     * written. */
    int
    finish(const SizeSweepOutcome &outcome, Count refs)
    {
        obs::ProgressBar::setActive(nullptr);
        obs::setPoolJobSpans(false);
        obs::Tracer::setActive(nullptr);
        obs::setActiveMetrics(nullptr);
        if (bar)
            bar->finish();

        int rc = kExitOk;
        if (tracer)
            rc = std::max(rc,
                          writeOrComplain(opts.traceOut,
                                          tracer->writeJson(opts.traceOut)));
        if (!collector)
            return rc;

        obs::RunInfo info;
        info.trace = traceName;
        info.refs = refs;
        info.lineBytes = opts.lineBytes;
        info.engine = opts.replay == ReplayEngine::Batched ? "batched"
                      : opts.replay == ReplayEngine::Kernel
                          ? "kernel"
                          : "per-leg";
        info.workers = ThreadPool::global().workers();
        std::vector<obs::ReportFailure> failures;
        for (const auto &failure : outcome.failures)
            failures.push_back({failure.bench, failure.sizeBytes,
                                failure.model,
                                failure.status.toString()});
        const obs::RunReport report = obs::RunReport::build(
            info, *collector, std::move(failures));
        if (!opts.metricsOut.empty())
            rc = std::max(
                rc, writeOrComplain(opts.metricsOut,
                                    obs::writeTextFile(opts.metricsOut,
                                                       report.toJson())));
        if (!opts.csvOut.empty())
            rc = std::max(
                rc, writeOrComplain(opts.csvOut,
                                    obs::writeTextFile(opts.csvOut,
                                                       report.toCsv())));
        return rc;
    }

  private:
    static int
    writeOrComplain(const std::string &path, const Status &status)
    {
        if (status.ok())
            return kExitOk;
        std::fprintf(stderr, "dynex: cannot write %s: %s\n",
                     path.c_str(), status.toString().c_str());
        return exitCodeFor(status);
    }

    const Options &opts;
    const std::string traceName;
    std::unique_ptr<obs::MetricsCollector> collector;
    std::unique_ptr<obs::Tracer> tracer;
    std::unique_ptr<obs::ProgressBar> bar;
};

int
cmdSweep(const std::string &target, const Options &options)
{
    applyThreads(options);
    int rc = kExitInternal;
    const auto trace = resolveTrace(target, options, rc);
    if (!trace)
        return rc;

    if (options.injectFaultSize > 0) {
        const std::uint64_t fault_size = options.injectFaultSize;
        setSweepFaultHook([fault_size](const std::string &,
                                       std::uint64_t size_bytes) {
            if (size_bytes == fault_size)
                throw StatusError(Status::internal("injected fault"));
        });
    }

    DynamicExclusionConfig config;
    config.stickyMax = options.stickyMax;
    config.useLastLine = options.lineBytes > 4;
    SweepObservation observation(options, *trace);
    const auto outcome = sweepSizesChecked(*trace, paperCacheSizes(),
                                           options.lineBytes, config,
                                           options.replay);
    const int obs_rc =
        observation.finish(outcome, trace->size());

    Table table;
    table.setHeader({"size", "dm miss %", "dynex miss %", "opt miss %",
                     "dynex gain %"});
    for (std::size_t s = 0; s < outcome.points.size(); ++s) {
        const auto &point = outcome.points[s];
        if (!outcome.ok[s]) {
            table.addRow({formatSize(point.sizeBytes), "-", "-", "-",
                          "-"});
            continue;
        }
        table.addRow({formatSize(point.sizeBytes),
                      Table::fmt(point.dmMissPct, 3),
                      Table::fmt(point.deMissPct, 3),
                      Table::fmt(point.optMissPct, 3),
                      Table::fmt(point.deImprovementPct(), 1)});
    }
    std::printf("trace: %s (%zu refs), %s lines, %u worker thread(s)\n\n",
                trace->name().c_str(), trace->size(),
                formatSize(options.lineBytes).c_str(),
                ThreadPool::global().workers());
    std::printf("%s", table.toText().c_str());

    if (!outcome.failures.empty()) {
        Table failed;
        failed.setHeader({"failed leg", "status"});
        int worst = kExitOk;
        for (const auto &failure : outcome.failures) {
            failed.addRow({failure.bench + " @ " +
                               formatSize(failure.sizeBytes),
                           failure.status.toString()});
            worst = std::max(worst, exitCodeFor(failure.status));
        }
        std::printf("\n%zu of %zu legs failed; results above are "
                    "partial\n\n%s",
                    outcome.failures.size(), outcome.points.size(),
                    failed.toText().c_str());
        return worst;
    }
    return obs_rc;
}

int
cmdAnalyze(const std::string &target, const Options &options)
{
    int rc = kExitInternal;
    const auto trace = resolveTrace(target, options, rc);
    if (!trace)
        return rc;

    const auto geometry =
        CacheGeometry::directMapped(options.sizeBytes, options.lineBytes);
    const ConflictCensus census = conflictCensus(*trace, geometry);
    const Log2Histogram reuse =
        reuseDistanceHistogram(*trace, options.lineBytes);

    std::printf("trace:   %s (%zu refs)\n", trace->name().c_str(),
                trace->size());
    std::printf("cache:   %s\n", geometry.toString().c_str());
    std::printf("census:  %s\n", census.toString().c_str());
    std::printf("         two-way sets are dynamic exclusion's "
                "headroom; multi-way rotations defeat one sticky "
                "bit\n");
    std::printf("reuse-distance histogram (intervening line refs):\n%s",
                reuse.toString().c_str());
    std::printf("median reuse distance <= %llu lines (cache holds "
                "%llu)\n",
                static_cast<unsigned long long>(
                    reuse.quantileUpperBound(0.5)),
                static_cast<unsigned long long>(geometry.numLines()));
    return 0;
}

/** Connect to the dynex_serve instance named by --host/--port. */
std::optional<server::Client>
connectRemote(const Options &options, int &exit_code)
{
    if (options.port == 0) {
        std::fprintf(stderr,
                     "dynex: remote commands need --port (see "
                     "dynex_serve --port-file)\n");
        exit_code = kExitUsage;
        return std::nullopt;
    }
    server::Client client;
    if (!options.clientId.empty())
        client.setClientId(options.clientId);
    if (options.retries > 0) {
        server::RetryPolicy retry;
        retry.retries = options.retries;
        retry.backoffMs = options.backoffMs;
        retry.budgetMs = options.deadlineMs;
        client.setRetryPolicy(retry);
    }
    const Status status = client.connect(options.host, options.port);
    if (!status.ok()) {
        std::fprintf(stderr, "dynex: %s\n", status.toString().c_str());
        exit_code = exitCodeFor(status);
        return std::nullopt;
    }
    return client;
}

int
cmdRemoteLs(const Options &options)
{
    int rc = kExitInternal;
    auto client = connectRemote(options, rc);
    if (!client)
        return rc;

    const Result<server::PingInfo> info = client->ping();
    if (!info.ok()) {
        std::fprintf(stderr, "dynex: ping failed: %s\n",
                     info.status().toString().c_str());
        return exitCodeFor(info.status());
    }
    const auto traces = client->list();
    if (!traces.ok()) {
        std::fprintf(stderr, "dynex: list failed: %s\n",
                     traces.status().toString().c_str());
        return exitCodeFor(traces.status());
    }

    std::printf("server %s at %s:%u, %llu trace(s)\n\n",
                info.value().version.c_str(), options.host.c_str(),
                options.port,
                static_cast<unsigned long long>(info.value().traces));
    Table table;
    table.setHeader({"trace", "source", "resident"});
    for (const auto &entry : traces.value())
        table.addRow({entry.name,
                      entry.fileBytes ? formatSize(entry.fileBytes)
                                      : "synthetic",
                      entry.resident ? "yes" : "no"});
    std::printf("%s", table.toText().c_str());
    return kExitOk;
}

int
cmdRemoteSweep(const std::string &target, const Options &options)
{
    int rc = kExitInternal;
    auto client = connectRemote(options, rc);
    if (!client)
        return rc;

    // --trace-out: record client-side rpc spans and send trace ids on
    // the wire, so the server's own --trace-out spans carry matching
    // ids and `dynex trace-merge` can stitch the two timelines.
    std::unique_ptr<obs::Tracer> tracer;
    if (!options.traceOut.empty()) {
        tracer = std::make_unique<obs::Tracer>();
        obs::Tracer::setActive(tracer.get());
        client->setTracing(true);
    }

    server::SweepRequest request;
    request.trace = target;
    request.lineBytes = options.lineBytes;
    request.engine = options.replay == ReplayEngine::Batched ? 0
                     : options.replay == ReplayEngine::PerLeg ? 1
                                                              : 2;
    request.stickyMax = options.stickyMax;
    request.deadlineMs = options.deadlineMs;
    const Result<server::SweepResult> swept = client->sweep(request);
    int traceRc = kExitOk;
    if (tracer) {
        obs::Tracer::setActive(nullptr);
        const Status wrote = tracer->writeJson(options.traceOut);
        if (!wrote.ok()) {
            std::fprintf(stderr, "dynex: cannot write %s: %s\n",
                         options.traceOut.c_str(),
                         wrote.toString().c_str());
            traceRc = exitCodeFor(wrote);
        }
    }
    if (!swept.ok()) {
        std::fprintf(stderr, "dynex: remote sweep failed: %s\n",
                     swept.status().toString().c_str());
        return exitCodeFor(swept.status());
    }
    const server::SweepResult &result = swept.value();

    // The table below is built exactly like cmdSweep's: miss rates
    // travel bit-exactly, so the rendered rows are byte-identical to
    // a local sweep of the same trace.
    Table table;
    table.setHeader({"size", "dm miss %", "dynex miss %", "opt miss %",
                     "dynex gain %"});
    for (const auto &point : result.points) {
        if (!point.ok) {
            table.addRow({formatSize(point.sizeBytes), "-", "-", "-",
                          "-"});
            continue;
        }
        SizeSweepPoint local;
        local.dmMissPct = point.dmMissPct;
        local.deMissPct = point.deMissPct;
        local.optMissPct = point.optMissPct;
        table.addRow({formatSize(point.sizeBytes),
                      Table::fmt(point.dmMissPct, 3),
                      Table::fmt(point.deMissPct, 3),
                      Table::fmt(point.optMissPct, 3),
                      Table::fmt(local.deImprovementPct(), 1)});
    }
    std::printf("trace: %s (%llu refs), %s lines, served by %s:%u\n\n",
                result.trace.c_str(),
                static_cast<unsigned long long>(result.refs),
                formatSize(options.lineBytes).c_str(),
                options.host.c_str(), options.port);
    std::printf("%s", table.toText().c_str());

    if (!result.failures.empty()) {
        Table failed;
        failed.setHeader({"failed leg", "status"});
        int worst = kExitOk;
        for (const auto &failure : result.failures) {
            const Status status = server::statusFromWire(
                {failure.code, failure.message});
            failed.addRow({failure.bench + " @ " +
                               formatSize(failure.sizeBytes),
                           status.toString()});
            worst = std::max(worst, exitCodeFor(status));
        }
        std::printf("\n%zu of %zu legs failed; results above are "
                    "partial\n\n%s",
                    result.failures.size(), result.points.size(),
                    failed.toText().c_str());
        return std::max(worst, traceRc);
    }
    return traceRc;
}

/** One parsed latency series out of a STATS response: the percentile
 * rows the server pre-computes from its merged histogram. */
struct LatencyRow
{
    std::string series;
    std::uint64_t count = 0;
    std::uint64_t p50Us = 0;
    std::uint64_t p95Us = 0;
    std::uint64_t p99Us = 0;
    std::uint64_t maxUs = 0;
};

/** Split STATS rows into scalar counters and latency series (the
 * lat-*-{count,p50-us,...} convention; -le- bucket rows and -sum-us
 * feed Prometheus, not the dashboard). */
void
splitStatsRows(const obs::StatsRows &rows, obs::StatsRows &scalars,
               std::vector<LatencyRow> &latencies)
{
    auto seriesOf = [&](const std::string &name,
                        const char *suffix) -> LatencyRow * {
        const std::size_t tail = std::strlen(suffix);
        if (name.size() <= 4 + tail || name.compare(0, 4, "lat-") != 0 ||
            name.compare(name.size() - tail, tail, suffix) != 0)
            return nullptr;
        const std::string series =
            name.substr(4, name.size() - 4 - tail);
        for (LatencyRow &row : latencies)
            if (row.series == series)
                return &row;
        latencies.push_back({series, 0, 0, 0, 0, 0});
        return &latencies.back();
    };
    for (const auto &[name, value] : rows) {
        if (LatencyRow *row = seriesOf(name, "-count"))
            row->count = value;
        else if (LatencyRow *row = seriesOf(name, "-p50-us"))
            row->p50Us = value;
        else if (LatencyRow *row = seriesOf(name, "-p95-us"))
            row->p95Us = value;
        else if (LatencyRow *row = seriesOf(name, "-p99-us"))
            row->p99Us = value;
        else if (LatencyRow *row = seriesOf(name, "-max-us"))
            row->maxUs = value;
        else if (name.compare(0, 4, "lat-") != 0)
            scalars.emplace_back(name, value);
    }
}

int
cmdRemoteStats(const Options &options)
{
    int rc = kExitInternal;
    auto client = connectRemote(options, rc);
    if (!client)
        return rc;

    for (;;) {
        const Result<server::StatsResult> stats = client->stats();
        if (!stats.ok()) {
            std::fprintf(stderr, "dynex: stats failed: %s\n",
                         stats.status().toString().c_str());
            return exitCodeFor(stats.status());
        }

        if (options.prom) {
            std::printf("%s", obs::renderProm(stats.value().counters)
                                  .c_str());
        } else {
            if (options.watchSec > 0)
                std::printf("\x1b[H\x1b[2J"); // home + clear
            obs::StatsRows scalars;
            std::vector<LatencyRow> latencies;
            splitStatsRows(stats.value().counters, scalars, latencies);

            std::printf("dynex_serve %s:%u\n\n", options.host.c_str(),
                        options.port);
            Table counters;
            counters.setHeader({"counter", "value"});
            for (const auto &[name, value] : scalars)
                counters.addRow({name, std::to_string(value)});
            std::printf("%s", counters.toText().c_str());
            if (!latencies.empty()) {
                Table lat;
                lat.setHeader({"latency", "count", "p50 us", "p95 us",
                               "p99 us", "max us"});
                for (const LatencyRow &row : latencies)
                    lat.addRow({row.series, std::to_string(row.count),
                                std::to_string(row.p50Us),
                                std::to_string(row.p95Us),
                                std::to_string(row.p99Us),
                                std::to_string(row.maxUs)});
                std::printf("\n%s", lat.toText().c_str());
            }
        }
        if (options.watchSec == 0)
            return kExitOk;
        std::fflush(stdout);
        std::this_thread::sleep_for(
            std::chrono::seconds(options.watchSec));
    }
}

/** Read a whole file; nullopt (with a complaint) on failure. */
std::optional<std::string>
readWholeFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        std::fprintf(stderr, "dynex: cannot read %s\n", path.c_str());
        return std::nullopt;
    }
    std::string text;
    char buffer[1 << 16];
    std::size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
        text.append(buffer, got);
    const bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed) {
        std::fprintf(stderr, "dynex: cannot read %s\n", path.c_str());
        return std::nullopt;
    }
    return text;
}

int
cmdTraceMerge(const std::string &out_path,
              const std::vector<std::string> &in_paths)
{
    std::vector<obs::MergeInput> inputs;
    for (const std::string &path : in_paths) {
        const auto text = readWholeFile(path);
        if (!text)
            return kExitIo;
        Result<std::vector<obs::MergeEvent>> events =
            obs::parseChromeTrace(*text);
        if (!events.ok()) {
            std::fprintf(stderr, "dynex: %s: %s\n", path.c_str(),
                         events.status().toString().c_str());
            return exitCodeFor(events.status());
        }
        inputs.push_back({path, std::move(events).value()});
    }
    const std::string merged = obs::mergeChromeTraces(inputs);
    const Status wrote = obs::writeTextFile(out_path, merged);
    if (!wrote.ok()) {
        std::fprintf(stderr, "dynex: cannot write %s: %s\n",
                     out_path.c_str(), wrote.toString().c_str());
        return exitCodeFor(wrote);
    }
    std::size_t spans = 0;
    for (const auto &input : inputs)
        spans += input.events.size();
    std::printf("merged %zu spans from %zu trace(s) into %s\n", spans,
                inputs.size(), out_path.c_str());
    return kExitOk;
}

int
cmdPromCheck(const std::string &path)
{
    const auto text = readWholeFile(path);
    if (!text)
        return kExitIo;
    const Status status = obs::promStrictParse(*text);
    if (!status.ok()) {
        std::fprintf(stderr, "dynex: %s: %s\n", path.c_str(),
                     status.toString().c_str());
        return exitCodeFor(status);
    }
    std::printf("%s: valid Prometheus text exposition\n", path.c_str());
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    if (command == "version" || command == "--version") {
        std::printf("dynex %s\n", versionString());
        return 0;
    }
    if (command == "help" || command == "--help" || command == "-h") {
        printUsage(stdout);
        return kExitOk;
    }
    if (command == "list")
        return cmdList();

    if (command == "remote-ls") {
        Options options;
        if (!parseOptions(argc, argv, 2, options))
            return kExitUsage;
        return cmdRemoteLs(options);
    }
    if (command == "remote-sweep") {
        if (argc < 3)
            return usage();
        Options options;
        if (!parseOptions(argc, argv, 3, options))
            return kExitUsage;
        return cmdRemoteSweep(argv[2], options);
    }
    if (command == "remote-stats") {
        Options options;
        if (!parseOptions(argc, argv, 2, options))
            return kExitUsage;
        return cmdRemoteStats(options);
    }
    if (command == "trace-merge") {
        if (argc < 4)
            return usage();
        std::vector<std::string> inputs;
        for (int i = 3; i < argc; ++i)
            inputs.emplace_back(argv[i]);
        return cmdTraceMerge(argv[2], inputs);
    }
    if (command == "prom-check") {
        if (argc < 3)
            return usage();
        return cmdPromCheck(argv[2]);
    }

    if (command == "gen") {
        if (argc < 4)
            return usage();
        Options options;
        options.stream = "mixed";
        if (!parseOptions(argc, argv, 4, options))
            return 2;
        return cmdGen(argv[2], argv[3], options);
    }
    if (command == "info") {
        if (argc < 3)
            return usage();
        return cmdInfo(argv[2]);
    }
    if (command == "convert") {
        if (argc < 4)
            return usage();
        Options options;
        if (!parseOptions(argc, argv, 4, options))
            return kExitUsage;
        return cmdConvert(argv[2], argv[3], options);
    }
    if (command == "import") {
        if (argc < 4)
            return usage();
        Options options;
        if (!parseOptions(argc, argv, 4, options))
            return kExitUsage;
        return cmdImport(argv[2], argv[3], options);
    }
    if (command == "campaign") {
        if (argc < 4)
            return usage();
        const std::string verb = argv[2];
        if (verb != "run" && verb != "check") {
            std::fprintf(stderr,
                         "dynex: campaign needs a verb: run or "
                         "check\n");
            return usage();
        }
        Options options;
        if (!parseOptions(argc, argv, 4, options))
            return kExitUsage;
        return cmdCampaign(verb, argv[3], options);
    }
    if (command == "sim" || command == "triad" || command == "sweep" ||
        command == "analyze") {
        if (argc < 3)
            return usage();
        Options options;
        if (!parseOptions(argc, argv, 3, options))
            return 2;
        if (command == "sim")
            return cmdSim(argv[2], options);
        if (command == "triad")
            return cmdTriad(argv[2], options);
        if (command == "sweep")
            return cmdSweep(argv[2], options);
        return cmdAnalyze(argv[2], options);
    }
    std::fprintf(stderr, "dynex: unknown command '%s'\n",
                 command.c_str());
    return usage();
}
