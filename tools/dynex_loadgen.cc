/**
 * @file
 * dynex_loadgen: a load-generation harness for dynex_serve.
 *
 *   dynex_loadgen --port P [--host H] [--mode open|closed]
 *                 [--rps R] [--clients N] [--duration-ms D]
 *                 [--mix ping=8,ls=1,sweep=1] [--trace NAME]
 *                 [--line L] [--replay E] [--seed S]
 *                 [--retries N] [--backoff-ms N] [--deadline-ms N]
 *                 [--latency-budget-ms B] [--report F]
 *
 * Drives a running dynex_serve with a configurable request mix from N
 * concurrent clients, either open-loop (Poisson arrivals at a target
 * aggregate RPS: a late request is sent immediately, so offered load
 * does not shrink when the server slows down) or closed-loop
 * (back-to-back). Each client identifies itself via the DXP1 hello
 * ("loadgen-<i>") and retries BUSY sheds / transport faults per
 * --retries, honoring the server's retryAfterMs hints.
 *
 * Reports p50/p95/p99 latency, achieved throughput, and
 * BUSY/shed/retry counts as a table on stdout and, with --report, as
 * a dynex-metrics-v1 JSON run report (loadgen rows in the "server"
 * section). The report also embeds the server's own view of the run:
 * a STATS snapshot is taken before and after the load and the delta
 * of every scalar counter lands as a srv-delta-<name> row, so the
 * report pairs client-observed latency with what the server actually
 * did (admissions, sheds, store churn). Exit is nonzero when nothing
 * succeeded or when p95 exceeds --latency-budget-ms, so a ctest can
 * gate on "the daemon sustains this mix within budget".
 *
 * Exit codes: 0 ok, 1 budget exceeded / no progress, 2 usage,
 * 3 I/O error.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "server/client.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/version.h"

namespace
{

using namespace dynex;

struct MixWeights
{
    unsigned ping = 8;
    unsigned ls = 1;
    unsigned sweep = 1;

    unsigned total() const { return ping + ls + sweep; }
};

struct Options
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    bool openLoop = true;
    double rps = 50.0;           // open-loop aggregate target
    unsigned clients = 4;
    std::uint32_t durationMs = 2000;
    MixWeights mix;
    std::string trace = "espresso";
    std::uint32_t lineBytes = 4;
    std::uint8_t engine = 0; // 0 batched, 1 per-leg, 2 kernel
    std::uint64_t seed = 1992;
    unsigned retries = 0;
    std::uint32_t backoffMs = 50;
    std::uint32_t deadlineMs = 0;
    std::uint32_t latencyBudgetMs = 0; // 0 = no gate
    std::string reportOut;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dynex_loadgen --port P [options]\n"
        "  --host H           server address (default 127.0.0.1)\n"
        "  --mode open|closed open: Poisson arrivals at --rps;\n"
        "                     closed: back-to-back (default open)\n"
        "  --rps R            open-loop aggregate request rate\n"
        "                     (default 50)\n"
        "  --clients N        concurrent client connections\n"
        "                     (default 4)\n"
        "  --duration-ms D    run length (default 2000)\n"
        "  --mix SPEC         request mix weights, e.g.\n"
        "                     ping=8,ls=1,sweep=1 (the default)\n"
        "  --trace NAME       trace for sweep requests\n"
        "                     (default espresso)\n"
        "  --line L           line bytes for sweep requests\n"
        "                     (default 4)\n"
        "  --replay E         sweep engine: batched|per-leg|kernel\n"
        "  --seed S           arrival/jitter seed (default 1992)\n"
        "  --retries N        per-request retry attempts\n"
        "  --backoff-ms N     base retry backoff (default 50)\n"
        "  --deadline-ms N    per-request deadline + retry budget\n"
        "  --latency-budget-ms B  exit 1 when p95 latency exceeds B\n"
        "  --report F         write a dynex-metrics-v1 JSON report\n"
        "exit codes: 0 ok, 1 budget exceeded or no progress,\n"
        "            2 usage, 3 i/o error\n");
    return 2;
}

bool
parseMix(const std::string &text, MixWeights &mix)
{
    MixWeights parsed;
    parsed.ping = parsed.ls = parsed.sweep = 0;
    for (const std::string &field : split(text, ','))
    {
        const std::string entry = trim(field);
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = trim(entry.substr(0, eq));
        const std::string value = trim(entry.substr(eq + 1));
        char *end = nullptr;
        const unsigned long weight =
            std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
            return false;
        if (key == "ping")
            parsed.ping = static_cast<unsigned>(weight);
        else if (key == "ls")
            parsed.ls = static_cast<unsigned>(weight);
        else if (key == "sweep")
            parsed.sweep = static_cast<unsigned>(weight);
        else
            return false;
    }
    if (parsed.total() == 0)
        return false;
    mix = parsed;
    return true;
}

enum class ReqKind
{
    Ping,
    Ls,
    Sweep,
};

/** Everything one worker thread measured. */
struct WorkerResult
{
    std::vector<std::uint64_t> latenciesUs; ///< successful requests
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    server::RetryStats retry;
    Status firstError;
};

std::uint64_t
nowUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
workerMain(const Options &options, unsigned index,
           WorkerResult &result)
{
    server::Client client;
    client.setClientId("loadgen-" + std::to_string(index));
    if (options.retries > 0)
    {
        server::RetryPolicy policy;
        policy.retries = options.retries;
        policy.backoffMs = options.backoffMs;
        policy.budgetMs = options.deadlineMs;
        policy.seed = options.seed + 0x9e37ull * index;
        client.setRetryPolicy(policy);
    }
    const Status connected = client.connect(options.host, options.port);
    if (!connected.ok())
    {
        result.firstError = connected;
        return;
    }

    Rng rng(options.seed + index);
    const double perThreadRps =
        options.rps / std::max(1u, options.clients);
    const std::uint64_t startUs = nowUs();
    const std::uint64_t endUs =
        startUs + static_cast<std::uint64_t>(options.durationMs) * 1000;
    // Open loop: the next arrival is scheduled on an exponential
    // clock that never waits for the previous response.
    double nextArrivalUs = static_cast<double>(startUs);

    while (true)
    {
        if (options.openLoop)
        {
            // Exponential inter-arrival: -ln(U) / rate.
            const double u = std::max(rng.nextDouble(), 1e-12);
            nextArrivalUs += -std::log(u) / perThreadRps * 1e6;
            if (nextArrivalUs > static_cast<double>(endUs))
                break;
            const std::uint64_t now = nowUs();
            if (static_cast<double>(now) < nextArrivalUs)
                std::this_thread::sleep_for(std::chrono::microseconds(
                    static_cast<std::uint64_t>(nextArrivalUs) - now));
            // Behind schedule: send immediately, offered load holds.
        }
        else if (nowUs() >= endUs)
        {
            break;
        }

        // Weighted request pick from the mix.
        const std::uint64_t pick =
            rng.nextBelow(options.mix.total());
        const ReqKind kind = pick < options.mix.ping ? ReqKind::Ping
                             : pick < options.mix.ping + options.mix.ls
                                 ? ReqKind::Ls
                                 : ReqKind::Sweep;

        const std::uint64_t sentUs = nowUs();
        Status status;
        switch (kind)
        {
        case ReqKind::Ping:
            status = client.ping().status();
            break;
        case ReqKind::Ls:
            status = client.list().status();
            break;
        case ReqKind::Sweep:
        {
            server::SweepRequest request;
            request.trace = options.trace;
            request.lineBytes = options.lineBytes;
            request.engine = options.engine;
            request.deadlineMs = options.deadlineMs;
            status = client.sweep(request).status();
            break;
        }
        }
        ++result.sent;
        if (status.ok())
        {
            ++result.ok;
            result.latenciesUs.push_back(nowUs() - sentUs);
        }
        else
        {
            ++result.failed;
            if (result.firstError.ok())
                result.firstError = status;
        }
    }
    result.retry = client.retryStats();
}

std::uint64_t
percentileUs(const std::vector<std::uint64_t> &sorted, double pct)
{
    if (sorted.empty())
        return 0;
    const double rank = pct / 100.0 *
                        static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(rank + 0.5)];
}

using StatsSnapshot =
    std::vector<std::pair<std::string, std::uint64_t>>;

/** One STATS round-trip on a throwaway connection; empty on any
 * failure (the load run itself is unaffected). */
StatsSnapshot
fetchServerStats(const Options &options)
{
    server::Client control;
    control.setClientId("loadgen-control");
    if (!control.connect(options.host, options.port).ok())
        return {};
    const Result<server::StatsResult> stats = control.stats();
    if (!stats.ok())
        return {};
    return stats.value().counters;
}

/** before/after server counter deltas as srv-delta-<name> rows.
 * Latency rows (percentiles, buckets) are snapshots of a merged
 * histogram, not monotonic counters, so they are left out. */
void
appendServerDelta(const StatsSnapshot &before,
                  const StatsSnapshot &after, StatsSnapshot &rows)
{
    for (const auto &[name, afterValue] : after)
    {
        if (name.compare(0, 4, "lat-") == 0)
            continue;
        std::uint64_t beforeValue = 0;
        for (const auto &[beforeName, value] : before)
        {
            if (beforeName == name)
            {
                beforeValue = value;
                break;
            }
        }
        // Gauges (store-resident-bytes) can shrink; report those as
        // their absolute after-value rather than a wrapped delta.
        rows.emplace_back("srv-delta-" + name,
                          afterValue >= beforeValue
                              ? afterValue - beforeValue
                              : afterValue);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i)
    {
        const std::string flag = argv[i];
        if (flag == "--version")
        {
            std::printf("dynex_loadgen %s\n", versionString());
            return 0;
        }
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
            {
                std::fprintf(stderr,
                             "dynex_loadgen: %s needs a value\n",
                             flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        const char *v = value();
        if (!v)
            return 2;
        if (flag == "--host")
            options.host = v;
        else if (flag == "--port")
            options.port = static_cast<std::uint16_t>(
                std::strtoul(v, nullptr, 10));
        else if (flag == "--mode")
        {
            if (iequals(v, "open"))
                options.openLoop = true;
            else if (iequals(v, "closed"))
                options.openLoop = false;
            else
            {
                std::fprintf(stderr,
                             "dynex_loadgen: bad --mode '%s'\n", v);
                return 2;
            }
        }
        else if (flag == "--rps")
        {
            options.rps = std::strtod(v, nullptr);
            if (options.rps <= 0)
            {
                std::fprintf(stderr,
                             "dynex_loadgen: --rps must be > 0\n");
                return 2;
            }
        }
        else if (flag == "--clients")
            options.clients = std::max(
                1u,
                static_cast<unsigned>(std::strtoul(v, nullptr, 10)));
        else if (flag == "--duration-ms")
            options.durationMs = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        else if (flag == "--mix")
        {
            if (!parseMix(v, options.mix))
            {
                std::fprintf(stderr,
                             "dynex_loadgen: bad --mix '%s' (want "
                             "ping=N,ls=N,sweep=N)\n",
                             v);
                return 2;
            }
        }
        else if (flag == "--trace")
            options.trace = v;
        else if (flag == "--line")
            options.lineBytes = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        else if (flag == "--replay")
        {
            if (iequals(v, "batched"))
                options.engine = 0;
            else if (iequals(v, "per-leg"))
                options.engine = 1;
            else if (iequals(v, "kernel"))
                options.engine = 2;
            else
            {
                std::fprintf(stderr,
                             "dynex_loadgen: bad --replay '%s'\n", v);
                return 2;
            }
        }
        else if (flag == "--seed")
            options.seed = std::strtoull(v, nullptr, 10);
        else if (flag == "--retries")
            options.retries =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (flag == "--backoff-ms")
            options.backoffMs = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        else if (flag == "--deadline-ms")
            options.deadlineMs = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        else if (flag == "--latency-budget-ms")
            options.latencyBudgetMs = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        else if (flag == "--report")
            options.reportOut = v;
        else
        {
            std::fprintf(stderr,
                         "dynex_loadgen: unknown option '%s'\n",
                         flag.c_str());
            return usage();
        }
    }
    if (options.port == 0)
    {
        std::fprintf(stderr, "dynex_loadgen: --port is required\n");
        return usage();
    }

    // Server-side view of the run, for --report: counters before the
    // first request and after the last.
    StatsSnapshot statsBefore;
    if (!options.reportOut.empty())
        statsBefore = fetchServerStats(options);

    const std::uint64_t runStartUs = nowUs();
    std::vector<WorkerResult> results(options.clients);
    std::vector<std::thread> threads;
    threads.reserve(options.clients);
    for (unsigned c = 0; c < options.clients; ++c)
        threads.emplace_back(
            [&options, c, &results] {
                workerMain(options, c, results[c]);
            });
    for (std::thread &thread : threads)
        thread.join();
    const std::uint64_t runUs = std::max<std::uint64_t>(
        nowUs() - runStartUs, 1);

    // Aggregate.
    std::vector<std::uint64_t> latencies;
    std::uint64_t sent = 0, ok = 0, failed = 0;
    server::RetryStats retry;
    Status firstError;
    for (const WorkerResult &result : results)
    {
        latencies.insert(latencies.end(), result.latenciesUs.begin(),
                         result.latenciesUs.end());
        sent += result.sent;
        ok += result.ok;
        failed += result.failed;
        retry.attempts += result.retry.attempts;
        retry.retries += result.retry.retries;
        retry.busyResponses += result.retry.busyResponses;
        retry.transportFailures += result.retry.transportFailures;
        retry.sleptMs += result.retry.sleptMs;
        if (firstError.ok() && !result.firstError.ok())
            firstError = result.firstError;
    }
    std::sort(latencies.begin(), latencies.end());
    const std::uint64_t p50 = percentileUs(latencies, 50);
    const std::uint64_t p95 = percentileUs(latencies, 95);
    const std::uint64_t p99 = percentileUs(latencies, 99);
    const double achievedRps =
        static_cast<double>(ok) * 1e6 / static_cast<double>(runUs);

    Table table;
    table.setHeader({"metric", "value"});
    table.addRow({"mode", options.openLoop ? "open" : "closed"});
    table.addRow({"clients", std::to_string(options.clients)});
    table.addRow({"duration-ms",
                  std::to_string(runUs / 1000)});
    table.addRow({"requests-sent", std::to_string(sent)});
    table.addRow({"requests-ok", std::to_string(ok)});
    table.addRow({"requests-failed", std::to_string(failed)});
    table.addRow({"busy-responses",
                  std::to_string(retry.busyResponses)});
    table.addRow({"retries", std::to_string(retry.retries)});
    table.addRow({"transport-failures",
                  std::to_string(retry.transportFailures)});
    table.addRow({"backoff-slept-ms", std::to_string(retry.sleptMs)});
    table.addRow({"achieved-rps", Table::fmt(achievedRps, 1)});
    table.addRow({"latency-p50-us", std::to_string(p50)});
    table.addRow({"latency-p95-us", std::to_string(p95)});
    table.addRow({"latency-p99-us", std::to_string(p99)});
    std::printf("%s", table.toText().c_str());
    if (!firstError.ok())
        std::fprintf(stderr, "dynex_loadgen: first error: %s\n",
                     firstError.toString().c_str());

    if (!options.reportOut.empty())
    {
        obs::MetricsCollector collector;
        obs::RunInfo info;
        info.trace = options.trace;
        info.refs = 0;
        info.lineBytes = options.lineBytes;
        info.engine = "loadgen";
        info.workers = options.clients;
        obs::RunReport report =
            obs::RunReport::build(info, collector, {});
        report.extra = {
            {"requests-sent", sent},
            {"requests-ok", ok},
            {"requests-failed", failed},
            {"busy-responses", retry.busyResponses},
            {"retries", retry.retries},
            {"transport-failures", retry.transportFailures},
            {"backoff-slept-ms", retry.sleptMs},
            {"achieved-rps-x1000",
             static_cast<std::uint64_t>(achievedRps * 1000.0)},
            {"latency-p50-us", p50},
            {"latency-p95-us", p95},
            {"latency-p99-us", p99},
            {"run-us", runUs},
        };
        appendServerDelta(statsBefore, fetchServerStats(options),
                          report.extra);
        const Status wrote =
            obs::writeTextFile(options.reportOut, report.toJson());
        if (!wrote.ok())
        {
            std::fprintf(stderr, "dynex_loadgen: cannot write %s: %s\n",
                         options.reportOut.c_str(),
                         wrote.toString().c_str());
            return 3;
        }
    }

    if (ok == 0)
    {
        std::fprintf(stderr,
                     "dynex_loadgen: no request ever succeeded\n");
        return 1;
    }
    if (options.latencyBudgetMs > 0 &&
        p95 > static_cast<std::uint64_t>(options.latencyBudgetMs) * 1000)
    {
        std::fprintf(stderr,
                     "dynex_loadgen: p95 %llu us exceeds the %u ms "
                     "budget\n",
                     static_cast<unsigned long long>(p95),
                     options.latencyBudgetMs);
        return 1;
    }
    return 0;
}
