file(REMOVE_RECURSE
  "libdynex_cache.a"
)
