file(REMOVE_RECURSE
  "CMakeFiles/dynex_cache.dir/cache.cc.o"
  "CMakeFiles/dynex_cache.dir/cache.cc.o.d"
  "CMakeFiles/dynex_cache.dir/config.cc.o"
  "CMakeFiles/dynex_cache.dir/config.cc.o.d"
  "CMakeFiles/dynex_cache.dir/direct_mapped.cc.o"
  "CMakeFiles/dynex_cache.dir/direct_mapped.cc.o.d"
  "CMakeFiles/dynex_cache.dir/dynamic_exclusion.cc.o"
  "CMakeFiles/dynex_cache.dir/dynamic_exclusion.cc.o.d"
  "CMakeFiles/dynex_cache.dir/exclusion_fsm.cc.o"
  "CMakeFiles/dynex_cache.dir/exclusion_fsm.cc.o.d"
  "CMakeFiles/dynex_cache.dir/exclusion_stream.cc.o"
  "CMakeFiles/dynex_cache.dir/exclusion_stream.cc.o.d"
  "CMakeFiles/dynex_cache.dir/hierarchy.cc.o"
  "CMakeFiles/dynex_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/dynex_cache.dir/hit_last.cc.o"
  "CMakeFiles/dynex_cache.dir/hit_last.cc.o.d"
  "CMakeFiles/dynex_cache.dir/optimal.cc.o"
  "CMakeFiles/dynex_cache.dir/optimal.cc.o.d"
  "CMakeFiles/dynex_cache.dir/replacement.cc.o"
  "CMakeFiles/dynex_cache.dir/replacement.cc.o.d"
  "CMakeFiles/dynex_cache.dir/set_assoc.cc.o"
  "CMakeFiles/dynex_cache.dir/set_assoc.cc.o.d"
  "CMakeFiles/dynex_cache.dir/static_exclusion.cc.o"
  "CMakeFiles/dynex_cache.dir/static_exclusion.cc.o.d"
  "CMakeFiles/dynex_cache.dir/stats.cc.o"
  "CMakeFiles/dynex_cache.dir/stats.cc.o.d"
  "CMakeFiles/dynex_cache.dir/stream_buffer.cc.o"
  "CMakeFiles/dynex_cache.dir/stream_buffer.cc.o.d"
  "CMakeFiles/dynex_cache.dir/victim.cc.o"
  "CMakeFiles/dynex_cache.dir/victim.cc.o.d"
  "libdynex_cache.a"
  "libdynex_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
