# Empty dependencies file for dynex_cache.
# This may be replaced when dependencies are built.
