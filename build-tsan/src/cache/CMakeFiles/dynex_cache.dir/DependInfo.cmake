
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/cache/CMakeFiles/dynex_cache.dir/cache.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/cache.cc.o.d"
  "/root/repo/src/cache/config.cc" "src/cache/CMakeFiles/dynex_cache.dir/config.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/config.cc.o.d"
  "/root/repo/src/cache/direct_mapped.cc" "src/cache/CMakeFiles/dynex_cache.dir/direct_mapped.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/direct_mapped.cc.o.d"
  "/root/repo/src/cache/dynamic_exclusion.cc" "src/cache/CMakeFiles/dynex_cache.dir/dynamic_exclusion.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/dynamic_exclusion.cc.o.d"
  "/root/repo/src/cache/exclusion_fsm.cc" "src/cache/CMakeFiles/dynex_cache.dir/exclusion_fsm.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/exclusion_fsm.cc.o.d"
  "/root/repo/src/cache/exclusion_stream.cc" "src/cache/CMakeFiles/dynex_cache.dir/exclusion_stream.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/exclusion_stream.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/cache/CMakeFiles/dynex_cache.dir/hierarchy.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/hierarchy.cc.o.d"
  "/root/repo/src/cache/hit_last.cc" "src/cache/CMakeFiles/dynex_cache.dir/hit_last.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/hit_last.cc.o.d"
  "/root/repo/src/cache/optimal.cc" "src/cache/CMakeFiles/dynex_cache.dir/optimal.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/optimal.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/cache/CMakeFiles/dynex_cache.dir/replacement.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/replacement.cc.o.d"
  "/root/repo/src/cache/set_assoc.cc" "src/cache/CMakeFiles/dynex_cache.dir/set_assoc.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/set_assoc.cc.o.d"
  "/root/repo/src/cache/static_exclusion.cc" "src/cache/CMakeFiles/dynex_cache.dir/static_exclusion.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/static_exclusion.cc.o.d"
  "/root/repo/src/cache/stats.cc" "src/cache/CMakeFiles/dynex_cache.dir/stats.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/stats.cc.o.d"
  "/root/repo/src/cache/stream_buffer.cc" "src/cache/CMakeFiles/dynex_cache.dir/stream_buffer.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/stream_buffer.cc.o.d"
  "/root/repo/src/cache/victim.cc" "src/cache/CMakeFiles/dynex_cache.dir/victim.cc.o" "gcc" "src/cache/CMakeFiles/dynex_cache.dir/victim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/dynex_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
