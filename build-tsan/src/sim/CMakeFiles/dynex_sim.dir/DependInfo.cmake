
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/analysis.cc" "src/sim/CMakeFiles/dynex_sim.dir/analysis.cc.o" "gcc" "src/sim/CMakeFiles/dynex_sim.dir/analysis.cc.o.d"
  "/root/repo/src/sim/parallel.cc" "src/sim/CMakeFiles/dynex_sim.dir/parallel.cc.o" "gcc" "src/sim/CMakeFiles/dynex_sim.dir/parallel.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/dynex_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/dynex_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/sim/CMakeFiles/dynex_sim.dir/runner.cc.o" "gcc" "src/sim/CMakeFiles/dynex_sim.dir/runner.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "src/sim/CMakeFiles/dynex_sim.dir/sweep.cc.o" "gcc" "src/sim/CMakeFiles/dynex_sim.dir/sweep.cc.o.d"
  "/root/repo/src/sim/workloads.cc" "src/sim/CMakeFiles/dynex_sim.dir/workloads.cc.o" "gcc" "src/sim/CMakeFiles/dynex_sim.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/cache/CMakeFiles/dynex_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tracegen/CMakeFiles/dynex_tracegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/dynex_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
