file(REMOVE_RECURSE
  "CMakeFiles/dynex_sim.dir/analysis.cc.o"
  "CMakeFiles/dynex_sim.dir/analysis.cc.o.d"
  "CMakeFiles/dynex_sim.dir/parallel.cc.o"
  "CMakeFiles/dynex_sim.dir/parallel.cc.o.d"
  "CMakeFiles/dynex_sim.dir/report.cc.o"
  "CMakeFiles/dynex_sim.dir/report.cc.o.d"
  "CMakeFiles/dynex_sim.dir/runner.cc.o"
  "CMakeFiles/dynex_sim.dir/runner.cc.o.d"
  "CMakeFiles/dynex_sim.dir/sweep.cc.o"
  "CMakeFiles/dynex_sim.dir/sweep.cc.o.d"
  "CMakeFiles/dynex_sim.dir/workloads.cc.o"
  "CMakeFiles/dynex_sim.dir/workloads.cc.o.d"
  "libdynex_sim.a"
  "libdynex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
