# Empty dependencies file for dynex_sim.
# This may be replaced when dependencies are built.
