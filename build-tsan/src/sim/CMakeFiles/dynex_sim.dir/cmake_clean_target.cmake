file(REMOVE_RECURSE
  "libdynex_sim.a"
)
