
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/filter.cc" "src/trace/CMakeFiles/dynex_trace.dir/filter.cc.o" "gcc" "src/trace/CMakeFiles/dynex_trace.dir/filter.cc.o.d"
  "/root/repo/src/trace/next_use.cc" "src/trace/CMakeFiles/dynex_trace.dir/next_use.cc.o" "gcc" "src/trace/CMakeFiles/dynex_trace.dir/next_use.cc.o.d"
  "/root/repo/src/trace/text_io.cc" "src/trace/CMakeFiles/dynex_trace.dir/text_io.cc.o" "gcc" "src/trace/CMakeFiles/dynex_trace.dir/text_io.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/dynex_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/dynex_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/dynex_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/dynex_trace.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
