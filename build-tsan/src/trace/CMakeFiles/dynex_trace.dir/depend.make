# Empty dependencies file for dynex_trace.
# This may be replaced when dependencies are built.
