file(REMOVE_RECURSE
  "CMakeFiles/dynex_trace.dir/filter.cc.o"
  "CMakeFiles/dynex_trace.dir/filter.cc.o.d"
  "CMakeFiles/dynex_trace.dir/next_use.cc.o"
  "CMakeFiles/dynex_trace.dir/next_use.cc.o.d"
  "CMakeFiles/dynex_trace.dir/text_io.cc.o"
  "CMakeFiles/dynex_trace.dir/text_io.cc.o.d"
  "CMakeFiles/dynex_trace.dir/trace.cc.o"
  "CMakeFiles/dynex_trace.dir/trace.cc.o.d"
  "CMakeFiles/dynex_trace.dir/trace_io.cc.o"
  "CMakeFiles/dynex_trace.dir/trace_io.cc.o.d"
  "libdynex_trace.a"
  "libdynex_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
