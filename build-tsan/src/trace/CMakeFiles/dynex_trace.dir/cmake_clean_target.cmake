file(REMOVE_RECURSE
  "libdynex_trace.a"
)
