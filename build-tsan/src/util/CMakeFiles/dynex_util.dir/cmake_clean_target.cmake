file(REMOVE_RECURSE
  "libdynex_util.a"
)
