# Empty dependencies file for dynex_util.
# This may be replaced when dependencies are built.
