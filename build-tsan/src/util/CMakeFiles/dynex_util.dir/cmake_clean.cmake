file(REMOVE_RECURSE
  "CMakeFiles/dynex_util.dir/csv.cc.o"
  "CMakeFiles/dynex_util.dir/csv.cc.o.d"
  "CMakeFiles/dynex_util.dir/histogram.cc.o"
  "CMakeFiles/dynex_util.dir/histogram.cc.o.d"
  "CMakeFiles/dynex_util.dir/logging.cc.o"
  "CMakeFiles/dynex_util.dir/logging.cc.o.d"
  "CMakeFiles/dynex_util.dir/rng.cc.o"
  "CMakeFiles/dynex_util.dir/rng.cc.o.d"
  "CMakeFiles/dynex_util.dir/stats.cc.o"
  "CMakeFiles/dynex_util.dir/stats.cc.o.d"
  "CMakeFiles/dynex_util.dir/string_utils.cc.o"
  "CMakeFiles/dynex_util.dir/string_utils.cc.o.d"
  "CMakeFiles/dynex_util.dir/table.cc.o"
  "CMakeFiles/dynex_util.dir/table.cc.o.d"
  "CMakeFiles/dynex_util.dir/thread_pool.cc.o"
  "CMakeFiles/dynex_util.dir/thread_pool.cc.o.d"
  "libdynex_util.a"
  "libdynex_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
