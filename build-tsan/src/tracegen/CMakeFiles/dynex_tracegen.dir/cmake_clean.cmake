file(REMOVE_RECURSE
  "CMakeFiles/dynex_tracegen.dir/builder.cc.o"
  "CMakeFiles/dynex_tracegen.dir/builder.cc.o.d"
  "CMakeFiles/dynex_tracegen.dir/data_pattern.cc.o"
  "CMakeFiles/dynex_tracegen.dir/data_pattern.cc.o.d"
  "CMakeFiles/dynex_tracegen.dir/executor.cc.o"
  "CMakeFiles/dynex_tracegen.dir/executor.cc.o.d"
  "CMakeFiles/dynex_tracegen.dir/program.cc.o"
  "CMakeFiles/dynex_tracegen.dir/program.cc.o.d"
  "CMakeFiles/dynex_tracegen.dir/spec.cc.o"
  "CMakeFiles/dynex_tracegen.dir/spec.cc.o.d"
  "libdynex_tracegen.a"
  "libdynex_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
