# Empty dependencies file for dynex_tracegen.
# This may be replaced when dependencies are built.
