file(REMOVE_RECURSE
  "libdynex_tracegen.a"
)
