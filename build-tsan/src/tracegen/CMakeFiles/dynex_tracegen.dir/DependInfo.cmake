
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracegen/builder.cc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/builder.cc.o" "gcc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/builder.cc.o.d"
  "/root/repo/src/tracegen/data_pattern.cc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/data_pattern.cc.o" "gcc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/data_pattern.cc.o.d"
  "/root/repo/src/tracegen/executor.cc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/executor.cc.o" "gcc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/executor.cc.o.d"
  "/root/repo/src/tracegen/program.cc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/program.cc.o" "gcc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/program.cc.o.d"
  "/root/repo/src/tracegen/spec.cc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/spec.cc.o" "gcc" "src/tracegen/CMakeFiles/dynex_tracegen.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/dynex_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
