# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/dynex_test_util[1]_include.cmake")
include("/root/repo/build-tsan/tests/dynex_test_trace[1]_include.cmake")
include("/root/repo/build-tsan/tests/dynex_test_tracegen[1]_include.cmake")
include("/root/repo/build-tsan/tests/dynex_test_cache[1]_include.cmake")
include("/root/repo/build-tsan/tests/dynex_test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/dynex_test_integration[1]_include.cmake")
include("/root/repo/build-tsan/tests/dynex_test_cli[1]_include.cmake")
