
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_analysis.cc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_analysis.cc.o" "gcc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_analysis.cc.o.d"
  "/root/repo/tests/sim/test_parallel.cc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_parallel.cc.o" "gcc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_parallel.cc.o.d"
  "/root/repo/tests/sim/test_report.cc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_report.cc.o" "gcc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_report.cc.o.d"
  "/root/repo/tests/sim/test_runner.cc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_runner.cc.o" "gcc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_runner.cc.o.d"
  "/root/repo/tests/sim/test_sweep.cc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_sweep.cc.o" "gcc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_sweep.cc.o.d"
  "/root/repo/tests/sim/test_timing.cc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_timing.cc.o" "gcc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_timing.cc.o.d"
  "/root/repo/tests/sim/test_workloads.cc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_workloads.cc.o" "gcc" "tests/CMakeFiles/dynex_test_sim.dir/sim/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/dynex_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/dynex_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tracegen/CMakeFiles/dynex_tracegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/dynex_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
