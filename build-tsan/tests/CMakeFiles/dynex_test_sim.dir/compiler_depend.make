# Empty compiler generated dependencies file for dynex_test_sim.
# This may be replaced when dependencies are built.
