file(REMOVE_RECURSE
  "CMakeFiles/dynex_test_sim.dir/sim/test_analysis.cc.o"
  "CMakeFiles/dynex_test_sim.dir/sim/test_analysis.cc.o.d"
  "CMakeFiles/dynex_test_sim.dir/sim/test_parallel.cc.o"
  "CMakeFiles/dynex_test_sim.dir/sim/test_parallel.cc.o.d"
  "CMakeFiles/dynex_test_sim.dir/sim/test_report.cc.o"
  "CMakeFiles/dynex_test_sim.dir/sim/test_report.cc.o.d"
  "CMakeFiles/dynex_test_sim.dir/sim/test_runner.cc.o"
  "CMakeFiles/dynex_test_sim.dir/sim/test_runner.cc.o.d"
  "CMakeFiles/dynex_test_sim.dir/sim/test_sweep.cc.o"
  "CMakeFiles/dynex_test_sim.dir/sim/test_sweep.cc.o.d"
  "CMakeFiles/dynex_test_sim.dir/sim/test_timing.cc.o"
  "CMakeFiles/dynex_test_sim.dir/sim/test_timing.cc.o.d"
  "CMakeFiles/dynex_test_sim.dir/sim/test_workloads.cc.o"
  "CMakeFiles/dynex_test_sim.dir/sim/test_workloads.cc.o.d"
  "dynex_test_sim"
  "dynex_test_sim.pdb"
  "dynex_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
