# Empty compiler generated dependencies file for dynex_test_cache.
# This may be replaced when dependencies are built.
