file(REMOVE_RECURSE
  "CMakeFiles/dynex_test_cache.dir/cache/test_config.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_config.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_direct_mapped.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_direct_mapped.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_dynamic_exclusion.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_dynamic_exclusion.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_exclusion_fsm.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_exclusion_fsm.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_exclusion_stream.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_exclusion_stream.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_factory.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_factory.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_hierarchy.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_hierarchy.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_hit_last.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_hit_last.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_optimal.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_optimal.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_replacement.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_replacement.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_set_assoc.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_set_assoc.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_static_exclusion.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_static_exclusion.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_stream_buffer.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_stream_buffer.cc.o.d"
  "CMakeFiles/dynex_test_cache.dir/cache/test_victim.cc.o"
  "CMakeFiles/dynex_test_cache.dir/cache/test_victim.cc.o.d"
  "dynex_test_cache"
  "dynex_test_cache.pdb"
  "dynex_test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
