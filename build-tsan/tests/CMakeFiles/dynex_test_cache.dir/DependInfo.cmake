
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/test_config.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_config.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_config.cc.o.d"
  "/root/repo/tests/cache/test_direct_mapped.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_direct_mapped.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_direct_mapped.cc.o.d"
  "/root/repo/tests/cache/test_dynamic_exclusion.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_dynamic_exclusion.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_dynamic_exclusion.cc.o.d"
  "/root/repo/tests/cache/test_exclusion_fsm.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_exclusion_fsm.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_exclusion_fsm.cc.o.d"
  "/root/repo/tests/cache/test_exclusion_stream.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_exclusion_stream.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_exclusion_stream.cc.o.d"
  "/root/repo/tests/cache/test_factory.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_factory.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_factory.cc.o.d"
  "/root/repo/tests/cache/test_hierarchy.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_hierarchy.cc.o.d"
  "/root/repo/tests/cache/test_hit_last.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_hit_last.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_hit_last.cc.o.d"
  "/root/repo/tests/cache/test_optimal.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_optimal.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_optimal.cc.o.d"
  "/root/repo/tests/cache/test_replacement.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_replacement.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_replacement.cc.o.d"
  "/root/repo/tests/cache/test_set_assoc.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_set_assoc.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_set_assoc.cc.o.d"
  "/root/repo/tests/cache/test_static_exclusion.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_static_exclusion.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_static_exclusion.cc.o.d"
  "/root/repo/tests/cache/test_stream_buffer.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_stream_buffer.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_stream_buffer.cc.o.d"
  "/root/repo/tests/cache/test_victim.cc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_victim.cc.o" "gcc" "tests/CMakeFiles/dynex_test_cache.dir/cache/test_victim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/dynex_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/dynex_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tracegen/CMakeFiles/dynex_tracegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/dynex_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
