file(REMOVE_RECURSE
  "CMakeFiles/dynex_test_util.dir/util/test_bitops.cc.o"
  "CMakeFiles/dynex_test_util.dir/util/test_bitops.cc.o.d"
  "CMakeFiles/dynex_test_util.dir/util/test_csv.cc.o"
  "CMakeFiles/dynex_test_util.dir/util/test_csv.cc.o.d"
  "CMakeFiles/dynex_test_util.dir/util/test_histogram.cc.o"
  "CMakeFiles/dynex_test_util.dir/util/test_histogram.cc.o.d"
  "CMakeFiles/dynex_test_util.dir/util/test_logging.cc.o"
  "CMakeFiles/dynex_test_util.dir/util/test_logging.cc.o.d"
  "CMakeFiles/dynex_test_util.dir/util/test_rng.cc.o"
  "CMakeFiles/dynex_test_util.dir/util/test_rng.cc.o.d"
  "CMakeFiles/dynex_test_util.dir/util/test_stats.cc.o"
  "CMakeFiles/dynex_test_util.dir/util/test_stats.cc.o.d"
  "CMakeFiles/dynex_test_util.dir/util/test_string_utils.cc.o"
  "CMakeFiles/dynex_test_util.dir/util/test_string_utils.cc.o.d"
  "CMakeFiles/dynex_test_util.dir/util/test_table.cc.o"
  "CMakeFiles/dynex_test_util.dir/util/test_table.cc.o.d"
  "CMakeFiles/dynex_test_util.dir/util/test_thread_pool.cc.o"
  "CMakeFiles/dynex_test_util.dir/util/test_thread_pool.cc.o.d"
  "dynex_test_util"
  "dynex_test_util.pdb"
  "dynex_test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
