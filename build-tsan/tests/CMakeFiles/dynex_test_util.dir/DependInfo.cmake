
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bitops.cc" "tests/CMakeFiles/dynex_test_util.dir/util/test_bitops.cc.o" "gcc" "tests/CMakeFiles/dynex_test_util.dir/util/test_bitops.cc.o.d"
  "/root/repo/tests/util/test_csv.cc" "tests/CMakeFiles/dynex_test_util.dir/util/test_csv.cc.o" "gcc" "tests/CMakeFiles/dynex_test_util.dir/util/test_csv.cc.o.d"
  "/root/repo/tests/util/test_histogram.cc" "tests/CMakeFiles/dynex_test_util.dir/util/test_histogram.cc.o" "gcc" "tests/CMakeFiles/dynex_test_util.dir/util/test_histogram.cc.o.d"
  "/root/repo/tests/util/test_logging.cc" "tests/CMakeFiles/dynex_test_util.dir/util/test_logging.cc.o" "gcc" "tests/CMakeFiles/dynex_test_util.dir/util/test_logging.cc.o.d"
  "/root/repo/tests/util/test_rng.cc" "tests/CMakeFiles/dynex_test_util.dir/util/test_rng.cc.o" "gcc" "tests/CMakeFiles/dynex_test_util.dir/util/test_rng.cc.o.d"
  "/root/repo/tests/util/test_stats.cc" "tests/CMakeFiles/dynex_test_util.dir/util/test_stats.cc.o" "gcc" "tests/CMakeFiles/dynex_test_util.dir/util/test_stats.cc.o.d"
  "/root/repo/tests/util/test_string_utils.cc" "tests/CMakeFiles/dynex_test_util.dir/util/test_string_utils.cc.o" "gcc" "tests/CMakeFiles/dynex_test_util.dir/util/test_string_utils.cc.o.d"
  "/root/repo/tests/util/test_table.cc" "tests/CMakeFiles/dynex_test_util.dir/util/test_table.cc.o" "gcc" "tests/CMakeFiles/dynex_test_util.dir/util/test_table.cc.o.d"
  "/root/repo/tests/util/test_thread_pool.cc" "tests/CMakeFiles/dynex_test_util.dir/util/test_thread_pool.cc.o" "gcc" "tests/CMakeFiles/dynex_test_util.dir/util/test_thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/dynex_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/dynex_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tracegen/CMakeFiles/dynex_tracegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/dynex_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
