# Empty dependencies file for dynex_test_util.
# This may be replaced when dependencies are built.
