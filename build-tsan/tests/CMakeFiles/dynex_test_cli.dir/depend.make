# Empty dependencies file for dynex_test_cli.
# This may be replaced when dependencies are built.
