file(REMOVE_RECURSE
  "CMakeFiles/dynex_test_cli.dir/tools/test_cli.cc.o"
  "CMakeFiles/dynex_test_cli.dir/tools/test_cli.cc.o.d"
  "dynex_test_cli"
  "dynex_test_cli.pdb"
  "dynex_test_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_test_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
