
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_edge_cases.cc" "tests/CMakeFiles/dynex_test_integration.dir/integration/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/dynex_test_integration.dir/integration/test_edge_cases.cc.o.d"
  "/root/repo/tests/integration/test_end_to_end.cc" "tests/CMakeFiles/dynex_test_integration.dir/integration/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/dynex_test_integration.dir/integration/test_end_to_end.cc.o.d"
  "/root/repo/tests/integration/test_paper_patterns.cc" "tests/CMakeFiles/dynex_test_integration.dir/integration/test_paper_patterns.cc.o" "gcc" "tests/CMakeFiles/dynex_test_integration.dir/integration/test_paper_patterns.cc.o.d"
  "/root/repo/tests/integration/test_properties.cc" "tests/CMakeFiles/dynex_test_integration.dir/integration/test_properties.cc.o" "gcc" "tests/CMakeFiles/dynex_test_integration.dir/integration/test_properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/dynex_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/dynex_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tracegen/CMakeFiles/dynex_tracegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/dynex_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
