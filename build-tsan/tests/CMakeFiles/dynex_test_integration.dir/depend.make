# Empty dependencies file for dynex_test_integration.
# This may be replaced when dependencies are built.
