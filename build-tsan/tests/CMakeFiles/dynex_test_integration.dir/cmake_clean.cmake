file(REMOVE_RECURSE
  "CMakeFiles/dynex_test_integration.dir/integration/test_edge_cases.cc.o"
  "CMakeFiles/dynex_test_integration.dir/integration/test_edge_cases.cc.o.d"
  "CMakeFiles/dynex_test_integration.dir/integration/test_end_to_end.cc.o"
  "CMakeFiles/dynex_test_integration.dir/integration/test_end_to_end.cc.o.d"
  "CMakeFiles/dynex_test_integration.dir/integration/test_paper_patterns.cc.o"
  "CMakeFiles/dynex_test_integration.dir/integration/test_paper_patterns.cc.o.d"
  "CMakeFiles/dynex_test_integration.dir/integration/test_properties.cc.o"
  "CMakeFiles/dynex_test_integration.dir/integration/test_properties.cc.o.d"
  "dynex_test_integration"
  "dynex_test_integration.pdb"
  "dynex_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
