
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/test_filter.cc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_filter.cc.o" "gcc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_filter.cc.o.d"
  "/root/repo/tests/trace/test_next_use.cc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_next_use.cc.o" "gcc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_next_use.cc.o.d"
  "/root/repo/tests/trace/test_record.cc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_record.cc.o" "gcc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_record.cc.o.d"
  "/root/repo/tests/trace/test_text_io.cc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_text_io.cc.o" "gcc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_text_io.cc.o.d"
  "/root/repo/tests/trace/test_trace.cc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_trace.cc.o" "gcc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_trace.cc.o.d"
  "/root/repo/tests/trace/test_trace_io.cc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/dynex_test_trace.dir/trace/test_trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/dynex_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/dynex_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tracegen/CMakeFiles/dynex_tracegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/dynex_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
