# Empty dependencies file for dynex_test_trace.
# This may be replaced when dependencies are built.
