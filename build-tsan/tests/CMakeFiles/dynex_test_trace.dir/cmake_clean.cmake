file(REMOVE_RECURSE
  "CMakeFiles/dynex_test_trace.dir/trace/test_filter.cc.o"
  "CMakeFiles/dynex_test_trace.dir/trace/test_filter.cc.o.d"
  "CMakeFiles/dynex_test_trace.dir/trace/test_next_use.cc.o"
  "CMakeFiles/dynex_test_trace.dir/trace/test_next_use.cc.o.d"
  "CMakeFiles/dynex_test_trace.dir/trace/test_record.cc.o"
  "CMakeFiles/dynex_test_trace.dir/trace/test_record.cc.o.d"
  "CMakeFiles/dynex_test_trace.dir/trace/test_text_io.cc.o"
  "CMakeFiles/dynex_test_trace.dir/trace/test_text_io.cc.o.d"
  "CMakeFiles/dynex_test_trace.dir/trace/test_trace.cc.o"
  "CMakeFiles/dynex_test_trace.dir/trace/test_trace.cc.o.d"
  "CMakeFiles/dynex_test_trace.dir/trace/test_trace_io.cc.o"
  "CMakeFiles/dynex_test_trace.dir/trace/test_trace_io.cc.o.d"
  "dynex_test_trace"
  "dynex_test_trace.pdb"
  "dynex_test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
