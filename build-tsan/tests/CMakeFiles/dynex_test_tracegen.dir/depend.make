# Empty dependencies file for dynex_test_tracegen.
# This may be replaced when dependencies are built.
