file(REMOVE_RECURSE
  "CMakeFiles/dynex_test_tracegen.dir/tracegen/test_builder.cc.o"
  "CMakeFiles/dynex_test_tracegen.dir/tracegen/test_builder.cc.o.d"
  "CMakeFiles/dynex_test_tracegen.dir/tracegen/test_data_pattern.cc.o"
  "CMakeFiles/dynex_test_tracegen.dir/tracegen/test_data_pattern.cc.o.d"
  "CMakeFiles/dynex_test_tracegen.dir/tracegen/test_program.cc.o"
  "CMakeFiles/dynex_test_tracegen.dir/tracegen/test_program.cc.o.d"
  "CMakeFiles/dynex_test_tracegen.dir/tracegen/test_spec.cc.o"
  "CMakeFiles/dynex_test_tracegen.dir/tracegen/test_spec.cc.o.d"
  "dynex_test_tracegen"
  "dynex_test_tracegen.pdb"
  "dynex_test_tracegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_test_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
