# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-tsan/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_micro_smoke "/root/repo/build-tsan/bench/bench_micro_throughput" "--benchmark_min_time=0.01")
set_tests_properties(bench_micro_smoke PROPERTIES  LABELS "bench" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
