# Empty compiler generated dependencies file for bench_fig09_l1_improvement.
# This may be replaced when dependencies are built.
