file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_l1_improvement.dir/fig09_l1_improvement.cc.o"
  "CMakeFiles/bench_fig09_l1_improvement.dir/fig09_l1_improvement.cc.o.d"
  "bench_fig09_l1_improvement"
  "bench_fig09_l1_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_l1_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
