# Empty compiler generated dependencies file for bench_fig08_l2_missrate.
# This may be replaced when dependencies are built.
