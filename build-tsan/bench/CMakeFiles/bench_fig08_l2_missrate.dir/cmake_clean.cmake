file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_l2_missrate.dir/fig08_l2_missrate.cc.o"
  "CMakeFiles/bench_fig08_l2_missrate.dir/fig08_l2_missrate.cc.o.d"
  "bench_fig08_l2_missrate"
  "bench_fig08_l2_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_l2_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
