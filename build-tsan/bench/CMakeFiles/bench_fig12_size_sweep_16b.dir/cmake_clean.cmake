file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_size_sweep_16b.dir/fig12_size_sweep_16b.cc.o"
  "CMakeFiles/bench_fig12_size_sweep_16b.dir/fig12_size_sweep_16b.cc.o.d"
  "bench_fig12_size_sweep_16b"
  "bench_fig12_size_sweep_16b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_size_sweep_16b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
