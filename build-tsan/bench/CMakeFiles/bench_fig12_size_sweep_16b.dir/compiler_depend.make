# Empty compiler generated dependencies file for bench_fig12_size_sweep_16b.
# This may be replaced when dependencies are built.
