
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_size_sweep_16b.cc" "bench/CMakeFiles/bench_fig12_size_sweep_16b.dir/fig12_size_sweep_16b.cc.o" "gcc" "bench/CMakeFiles/bench_fig12_size_sweep_16b.dir/fig12_size_sweep_16b.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/dynex_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/dynex_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tracegen/CMakeFiles/dynex_tracegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/dynex_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dynex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
