# Empty compiler generated dependencies file for bench_fig05_improvement.
# This may be replaced when dependencies are built.
