file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_improvement.dir/fig05_improvement.cc.o"
  "CMakeFiles/bench_fig05_improvement.dir/fig05_improvement.cc.o.d"
  "bench_fig05_improvement"
  "bench_fig05_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
