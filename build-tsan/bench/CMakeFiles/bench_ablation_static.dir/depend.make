# Empty dependencies file for bench_ablation_static.
# This may be replaced when dependencies are built.
