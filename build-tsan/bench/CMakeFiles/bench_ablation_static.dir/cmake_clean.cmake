file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_static.dir/ablation_static.cc.o"
  "CMakeFiles/bench_ablation_static.dir/ablation_static.cc.o.d"
  "bench_ablation_static"
  "bench_ablation_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
