file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_data_cache.dir/fig14_data_cache.cc.o"
  "CMakeFiles/bench_fig14_data_cache.dir/fig14_data_cache.cc.o.d"
  "bench_fig14_data_cache"
  "bench_fig14_data_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_data_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
