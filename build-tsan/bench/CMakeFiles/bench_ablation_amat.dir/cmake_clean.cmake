file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_amat.dir/ablation_amat.cc.o"
  "CMakeFiles/bench_ablation_amat.dir/ablation_amat.cc.o.d"
  "bench_ablation_amat"
  "bench_ablation_amat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_amat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
