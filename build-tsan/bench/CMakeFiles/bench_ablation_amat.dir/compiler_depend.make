# Empty compiler generated dependencies file for bench_ablation_amat.
# This may be replaced when dependencies are built.
