# Empty dependencies file for bench_fig04_size_sweep.
# This may be replaced when dependencies are built.
