file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_size_sweep.dir/fig04_size_sweep.cc.o"
  "CMakeFiles/bench_fig04_size_sweep.dir/fig04_size_sweep.cc.o.d"
  "bench_fig04_size_sweep"
  "bench_fig04_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
