file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_l1_vs_l2.dir/fig07_l1_vs_l2.cc.o"
  "CMakeFiles/bench_fig07_l1_vs_l2.dir/fig07_l1_vs_l2.cc.o.d"
  "bench_fig07_l1_vs_l2"
  "bench_fig07_l1_vs_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_l1_vs_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
