# Empty dependencies file for bench_fig07_l1_vs_l2.
# This may be replaced when dependencies are built.
