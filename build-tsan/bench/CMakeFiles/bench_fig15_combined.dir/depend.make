# Empty dependencies file for bench_fig15_combined.
# This may be replaced when dependencies are built.
