file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_combined.dir/fig15_combined.cc.o"
  "CMakeFiles/bench_fig15_combined.dir/fig15_combined.cc.o.d"
  "bench_fig15_combined"
  "bench_fig15_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
