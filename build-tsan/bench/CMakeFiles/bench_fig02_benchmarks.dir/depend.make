# Empty dependencies file for bench_fig02_benchmarks.
# This may be replaced when dependencies are built.
