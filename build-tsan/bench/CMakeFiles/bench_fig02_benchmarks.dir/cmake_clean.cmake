file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_benchmarks.dir/fig02_benchmarks.cc.o"
  "CMakeFiles/bench_fig02_benchmarks.dir/fig02_benchmarks.cc.o.d"
  "bench_fig02_benchmarks"
  "bench_fig02_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
