file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_line_size.dir/fig11_line_size.cc.o"
  "CMakeFiles/bench_fig11_line_size.dir/fig11_line_size.cc.o.d"
  "bench_fig11_line_size"
  "bench_fig11_line_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_line_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
