file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coldstart.dir/ablation_coldstart.cc.o"
  "CMakeFiles/bench_ablation_coldstart.dir/ablation_coldstart.cc.o.d"
  "bench_ablation_coldstart"
  "bench_ablation_coldstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
