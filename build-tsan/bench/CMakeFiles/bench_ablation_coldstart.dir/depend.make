# Empty dependencies file for bench_ablation_coldstart.
# This may be replaced when dependencies are built.
