file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_victim.dir/ablation_victim.cc.o"
  "CMakeFiles/bench_ablation_victim.dir/ablation_victim.cc.o.d"
  "bench_ablation_victim"
  "bench_ablation_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
