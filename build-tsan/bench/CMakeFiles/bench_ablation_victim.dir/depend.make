# Empty dependencies file for bench_ablation_victim.
# This may be replaced when dependencies are built.
