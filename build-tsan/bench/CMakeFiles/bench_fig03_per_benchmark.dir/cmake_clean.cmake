file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_per_benchmark.dir/fig03_per_benchmark.cc.o"
  "CMakeFiles/bench_fig03_per_benchmark.dir/fig03_per_benchmark.cc.o.d"
  "bench_fig03_per_benchmark"
  "bench_fig03_per_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_per_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
