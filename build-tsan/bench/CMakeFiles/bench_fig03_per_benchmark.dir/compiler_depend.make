# Empty compiler generated dependencies file for bench_fig03_per_benchmark.
# This may be replaced when dependencies are built.
