# Empty dependencies file for bench_ablation_l2dynex.
# This may be replaced when dependencies are built.
