file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_l2dynex.dir/ablation_l2dynex.cc.o"
  "CMakeFiles/bench_ablation_l2dynex.dir/ablation_l2dynex.cc.o.d"
  "bench_ablation_l2dynex"
  "bench_ablation_l2dynex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_l2dynex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
