file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lastline.dir/ablation_lastline.cc.o"
  "CMakeFiles/bench_ablation_lastline.dir/ablation_lastline.cc.o.d"
  "bench_ablation_lastline"
  "bench_ablation_lastline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lastline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
