# Empty dependencies file for bench_ablation_lastline.
# This may be replaced when dependencies are built.
