# Empty dependencies file for dynex.
# This may be replaced when dependencies are built.
