file(REMOVE_RECURSE
  "CMakeFiles/dynex.dir/dynex_cli.cc.o"
  "CMakeFiles/dynex.dir/dynex_cli.cc.o.d"
  "dynex"
  "dynex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
