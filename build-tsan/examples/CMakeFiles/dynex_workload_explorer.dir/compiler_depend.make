# Empty compiler generated dependencies file for dynex_workload_explorer.
# This may be replaced when dependencies are built.
