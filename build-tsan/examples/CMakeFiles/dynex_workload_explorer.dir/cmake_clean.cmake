file(REMOVE_RECURSE
  "CMakeFiles/dynex_workload_explorer.dir/workload_explorer.cpp.o"
  "CMakeFiles/dynex_workload_explorer.dir/workload_explorer.cpp.o.d"
  "dynex_workload_explorer"
  "dynex_workload_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_workload_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
