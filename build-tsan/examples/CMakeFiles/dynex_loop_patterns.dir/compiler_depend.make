# Empty compiler generated dependencies file for dynex_loop_patterns.
# This may be replaced when dependencies are built.
