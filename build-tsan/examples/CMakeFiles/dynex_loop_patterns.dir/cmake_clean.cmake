file(REMOVE_RECURSE
  "CMakeFiles/dynex_loop_patterns.dir/loop_patterns.cpp.o"
  "CMakeFiles/dynex_loop_patterns.dir/loop_patterns.cpp.o.d"
  "dynex_loop_patterns"
  "dynex_loop_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_loop_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
