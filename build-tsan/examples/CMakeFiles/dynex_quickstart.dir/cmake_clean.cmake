file(REMOVE_RECURSE
  "CMakeFiles/dynex_quickstart.dir/quickstart.cpp.o"
  "CMakeFiles/dynex_quickstart.dir/quickstart.cpp.o.d"
  "dynex_quickstart"
  "dynex_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
