# Empty compiler generated dependencies file for dynex_quickstart.
# This may be replaced when dependencies are built.
