# Empty dependencies file for dynex_hierarchy_tuning.
# This may be replaced when dependencies are built.
