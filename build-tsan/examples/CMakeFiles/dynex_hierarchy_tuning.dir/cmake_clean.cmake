file(REMOVE_RECURSE
  "CMakeFiles/dynex_hierarchy_tuning.dir/hierarchy_tuning.cpp.o"
  "CMakeFiles/dynex_hierarchy_tuning.dir/hierarchy_tuning.cpp.o.d"
  "dynex_hierarchy_tuning"
  "dynex_hierarchy_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynex_hierarchy_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
