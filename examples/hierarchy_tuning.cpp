/**
 * @file
 * Hierarchy tuning: a design-space walk for an on-chip two-level
 * cache. Given a workload, it compares hit-last storage policies and
 * L2 sizes and recommends the smallest configuration within a few
 * percent of the best L1 and L2 miss rates — the Section 5 trade-off
 * ("most of the performance is achieved as long as the L2 cache is at
 * least 4 times as large as the L1").
 *
 * Usage: dynex_hierarchy_tuning [benchmark] [refs]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "tracegen/spec.h"
#include "util/string_utils.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace dynex;

    const std::string benchmark = argc > 1 ? argv[1] : "gcc";
    if (!isSpecBenchmark(benchmark)) {
        std::fprintf(stderr, "unknown benchmark '%s'; choose from:",
                     benchmark.c_str());
        for (const auto &info : specSuite())
            std::fprintf(stderr, " %s", info.name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }
    const Count refs = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                : Workloads::defaultRefs();

    constexpr std::uint64_t kL1 = 32 * 1024;
    constexpr std::uint32_t kLine = 4;
    const auto trace = Workloads::instructions(benchmark, refs);

    std::printf("two-level hierarchy tuning for '%s' (L1 = 32KB/4B, "
                "%llu refs)\n\n",
                benchmark.c_str(),
                static_cast<unsigned long long>(refs));

    Table table;
    table.setHeader({"L2 size", "policy", "L1 miss %", "L2 global %",
                     "state bits"});

    struct Candidate
    {
        std::uint64_t l2Bytes;
        HitLastPolicy policy;
        double l1Pct;
        double l2Pct;
    };
    std::vector<Candidate> candidates;

    for (const std::uint64_t ratio : {2ull, 4ull, 8ull, 16ull}) {
        for (const HitLastPolicy policy :
             {HitLastPolicy::AssumeHit, HitLastPolicy::AssumeMiss,
              HitLastPolicy::Hashed}) {
            HierarchyConfig config;
            config.l1 = CacheGeometry::directMapped(kL1, kLine);
            config.l2 =
                CacheGeometry::directMapped(kL1 * ratio, kLine);
            config.policy = policy;
            config.hashedEntriesPerLine = 4;
            TwoLevelCache hierarchy(config);
            const HierarchyStats stats = runTrace(hierarchy, *trace);

            const std::uint64_t state_bits =
                policy == HitLastPolicy::Hashed
                    ? config.l1.numLines() * (1 + 4)
                    : config.l1.numLines() * 2 + config.l2.numLines();
            candidates.push_back({kL1 * ratio, policy,
                                  100.0 * stats.l1.missRate(),
                                  100.0 * stats.l2GlobalMissRate()});
            table.addRow({formatSize(kL1 * ratio),
                          hitLastPolicyName(policy),
                          Table::fmt(candidates.back().l1Pct, 3),
                          Table::fmt(candidates.back().l2Pct, 3),
                          std::to_string(state_bits)});
        }
    }
    std::printf("%s\n", table.toText().c_str());

    // Recommend: smallest configuration whose L1 and L2 are within 5%
    // (relative) of the best observed.
    double best_l1 = 1e9, best_l2 = 1e9;
    for (const auto &c : candidates) {
        best_l1 = std::min(best_l1, c.l1Pct);
        best_l2 = std::min(best_l2, c.l2Pct);
    }
    for (const auto &c : candidates) {
        if (c.l1Pct <= best_l1 * 1.05 + 0.01 &&
            c.l2Pct <= best_l2 * 1.05 + 0.01) {
            std::printf("recommended: %s L2 with the %s policy "
                        "(L1 %.3f%%, L2 global %.3f%%)\n",
                        formatSize(c.l2Bytes).c_str(),
                        hitLastPolicyName(c.policy), c.l1Pct, c.l2Pct);
            break;
        }
    }
    std::printf("\nrule of thumb (paper, Section 5): an L2 four times "
                "the L1 already captures most of the benefit, and the "
                "hashed option needs only ~4 hit-last bits per L1 "
                "line.\n");
    return 0;
}
