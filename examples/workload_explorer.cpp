/**
 * @file
 * Workload explorer: inspects the synthetic SPEC suite — code
 * footprint, phase-cycle (pass) length, stream composition — and runs
 * the three-way cache comparison, so users can see how each
 * benchmark's structure drives its conflict behavior.
 *
 * Usage: dynex_workload_explorer [refs-per-benchmark]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/analysis.h"
#include "sim/runner.h"
#include "sim/workloads.h"
#include "tracegen/executor.h"
#include "tracegen/spec.h"
#include "util/string_utils.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace dynex;

    const Count refs = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : Workloads::defaultRefs();
    constexpr std::uint64_t kCacheBytes = 32 * 1024;
    constexpr std::uint32_t kLineBytes = 4;

    std::printf("synthetic SPEC'89 suite at %llu refs/benchmark\n\n",
                static_cast<unsigned long long>(refs));

    Table table;
    table.setHeader({"benchmark", "code", "pass refs", "data%",
                     "2way sets", "3+way", "dm%", "de%", "opt%",
                     "de gain%"});

    for (const auto &info : specSuite()) {
        auto program = makeSpecProgram(info.name);
        const Count pass = measurePassLength(*program, 1);

        const auto mixed = Workloads::mixed(info.name, refs);
        const TraceSummary summary = mixed->summarize();
        const double data_pct =
            100.0 * static_cast<double>(summary.loads + summary.stores) /
            static_cast<double>(summary.total);

        const auto itrace = Workloads::instructions(info.name, refs);
        const NextUseIndex index(*itrace, kLineBytes,
                                 NextUseMode::RunStart);
        const TriadResult triad =
            runTriad(*itrace, index, kCacheBytes, kLineBytes);
        const ConflictCensus census = conflictCensus(
            *itrace,
            CacheGeometry::directMapped(kCacheBytes, kLineBytes));

        table.addRow({info.name, formatSize(program->codeFootprint()),
                      std::to_string(pass), Table::fmt(data_pct, 1),
                      std::to_string(census.twoWay()),
                      std::to_string(census.multiWay()),
                      Table::fmt(triad.dmMissPct(), 3),
                      Table::fmt(triad.deMissPct(), 3),
                      Table::fmt(triad.optMissPct(), 3),
                      Table::fmt(triad.deImprovementPct(), 1)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("pass refs = references per full cycle of the "
                "program's phases;\n2way/3+way = contested sets at %s "
                "(two-way sets are dynamic exclusion's headroom);\n"
                "triad columns are instruction-cache miss rates at the "
                "same geometry.\n",
                CacheGeometry::directMapped(kCacheBytes, kLineBytes)
                    .toString()
                    .c_str());
    return 0;
}
