/**
 * @file
 * Loop-pattern playground: replays the three canonical conflict
 * patterns of the paper's Section 3 through the conventional,
 * dynamic-exclusion, and optimal direct-mapped caches, printing the
 * per-reference hit/miss strings and the FSM transition counts so the
 * mechanism can be watched working.
 *
 * Usage: dynex_loop_patterns [pattern]
 *   pattern: a custom letter string, e.g. "aaabaaab" (letters a-z are
 *   placed one cache-stride apart so they all conflict). Without an
 *   argument the paper's three patterns are shown.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cache/direct_mapped.h"
#include "cache/dynamic_exclusion.h"
#include "cache/optimal.h"
#include "trace/next_use.h"

namespace
{

using namespace dynex;

constexpr std::uint64_t kCacheBytes = 64;
constexpr std::uint32_t kLineBytes = 4;
constexpr Addr kStride = kCacheBytes;

std::string
repeat(const std::string &group, int times)
{
    std::string out;
    for (int i = 0; i < times; ++i)
        out += group;
    return out;
}

std::string
outcomes(CacheModel &cache, const Trace &trace)
{
    std::string text;
    for (std::size_t i = 0; i < trace.size(); ++i)
        text += cache.access(trace[i], i).hit ? '.' : 'M';
    return text;
}

void
show(const std::string &title, const std::string &pattern)
{
    const Trace trace = Trace::fromPattern(pattern, 0x10000, kStride);
    const NextUseIndex index(trace, kLineBytes);
    const auto geometry =
        CacheGeometry::directMapped(kCacheBytes, kLineBytes);

    DirectMappedCache dm(geometry);
    DynamicExclusionCache de(geometry);
    OptimalDirectMappedCache opt(geometry, index);

    const std::string dm_out = outcomes(dm, trace);
    const std::string de_out = outcomes(de, trace);
    const std::string opt_out = outcomes(opt, trace);

    std::printf("%s\n  refs:     %s\n", title.c_str(), pattern.c_str());
    std::printf("  dm:       %s  (%llu misses, %.0f%%)\n",
                dm_out.c_str(),
                static_cast<unsigned long long>(dm.stats().misses),
                dm.stats().missPercent());
    std::printf("  dynex:    %s  (%llu misses, %.0f%%)\n",
                de_out.c_str(),
                static_cast<unsigned long long>(de.stats().misses),
                de.stats().missPercent());
    std::printf("  optimal:  %s  (%llu misses, %.0f%%)\n",
                opt_out.c_str(),
                static_cast<unsigned long long>(opt.stats().misses),
                opt.stats().missPercent());

    const auto &events = de.eventCounts();
    std::printf("  fsm: %llu hits, %llu bypasses, %llu unsticky "
                "replaces, %llu hit-last replaces\n\n",
                static_cast<unsigned long long>(
                    events.of(FsmEvent::Hit)),
                static_cast<unsigned long long>(
                    events.of(FsmEvent::Bypass)),
                static_cast<unsigned long long>(
                    events.of(FsmEvent::ReplaceUnsticky)),
                static_cast<unsigned long long>(
                    events.of(FsmEvent::ReplaceHitLast)));
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("dynamic exclusion on the Section 3 conflict patterns\n"
                "('M' = miss, '.' = hit; all letters map to one cache "
                "set)\n\n");

    if (argc > 1) {
        show("custom pattern", argv[1]);
        return 0;
    }

    show("1. conflict between loops, (a^10 b^10)^4:",
         repeat(repeat("a", 10) + repeat("b", 10), 4));
    show("2. conflict between loop levels, (a^10 b)^4:",
         repeat(repeat("a", 10) + "b", 4));
    show("3. conflict within a loop, (a b)^10:", repeat("ab", 10));
    show("4. the hard three-way rotation, (a b c)^8:",
         repeat("abc", 8));
    return 0;
}
