/**
 * @file
 * Quickstart: the library in ~40 lines. Generates each synthetic SPEC
 * benchmark's instruction stream, replays it through a conventional
 * direct-mapped cache, the dynamic-exclusion cache, and the optimal
 * direct-mapped cache at the paper's canonical 32KB/4B configuration,
 * and prints the comparison (the data behind Figure 3).
 *
 * Usage: dynex_quickstart [refs-per-benchmark]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/runner.h"
#include "sim/workloads.h"
#include "tracegen/spec.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace dynex;

    const Count refs = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : Workloads::defaultRefs();
    constexpr std::uint64_t kCacheBytes = 32 * 1024;
    constexpr std::uint32_t kLineBytes = 4;

    std::printf("dynamic exclusion quickstart: %llu instruction refs "
                "per benchmark, %s cache\n\n",
                static_cast<unsigned long long>(refs),
                CacheGeometry::directMapped(kCacheBytes, kLineBytes)
                    .toString()
                    .c_str());

    Table table;
    table.setHeader({"benchmark", "dm miss%", "dynex miss%", "opt miss%",
                     "dynex gain%", "opt gain%"});

    for (const auto &info : specSuite()) {
        const auto trace = Workloads::instructions(info.name, refs);
        const NextUseIndex index(*trace, kLineBytes,
                                 NextUseMode::RunStart);
        const TriadResult triad =
            runTriad(*trace, index, kCacheBytes, kLineBytes);
        table.addRow({info.name, Table::fmt(triad.dmMissPct(), 3),
                      Table::fmt(triad.deMissPct(), 3),
                      Table::fmt(triad.optMissPct(), 3),
                      Table::fmt(triad.deImprovementPct(), 1),
                      Table::fmt(triad.optImprovementPct(), 1)});
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("gain%% = miss-rate reduction vs the conventional "
                "direct-mapped cache.\n");
    return 0;
}
